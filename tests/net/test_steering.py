"""Steering policies: imbalance improves on Zipf, accounting unchanged."""

import pytest

from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.multicore import RssDispatcher, merged_countmin_rows
from repro.net.steering import (
    POLICIES,
    NtupleSteering,
    RekeySteering,
    RssSteering,
    RSS_HASH_SEED,
    make_policy,
)
from repro.net.xdp import XdpPipeline
from repro.nfs import CountMinNF

N_CORES = 8


def countmin_factory(core):
    return CountMinNF(BpfRuntime(mode=ExecMode.ENETSTL, seed=core), depth=4)


def zipf_trace(n_packets=12000, n_flows=8192, seed=5):
    return FlowGenerator(
        n_flows=n_flows, seed=seed, distribution="zipf"
    ).trace(n_packets)


def run_policy(policy, trace):
    return RssDispatcher(
        countmin_factory, n_cores=N_CORES, steering=policy
    ).run(trace)


class TestPolicyConstruction:
    def test_make_policy_by_name(self):
        for name, cls in POLICIES.items():
            assert isinstance(make_policy(name, 4), cls)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown steering policy"):
            make_policy("toeplitz++", 4)

    def test_bad_core_count(self):
        with pytest.raises(ValueError):
            RssSteering(0)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            RekeySteering(4, n_candidates=0)
        with pytest.raises(ValueError):
            RekeySteering(4, sample_size=0)
        with pytest.raises(ValueError):
            NtupleSteering(4, top_k=-1)
        with pytest.raises(ValueError):
            NtupleSteering(4, table_size=2)

    def test_core_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="built for 4 cores"):
            RssDispatcher(
                countmin_factory, n_cores=8, steering=RssSteering(4)
            )

    def test_dispatcher_accepts_policy_names(self):
        for name in POLICIES:
            disp = RssDispatcher(countmin_factory, n_cores=2, steering=name)
            assert disp.steering.name == name


class TestImbalanceImprovement:
    @pytest.fixture(scope="class")
    def results(self):
        trace = zipf_trace()
        return {
            name: run_policy(name, trace) for name in ("rss", "rekey", "ntuple")
        }

    def test_steered_strictly_beats_plain_rss_on_zipf(self, results):
        assert results["rekey"].imbalance < results["rss"].imbalance
        assert results["ntuple"].imbalance < results["rss"].imbalance

    def test_ntuple_hits_acceptance_bar(self, results):
        """The PR's headline: explicit steering <= 1.3 at 8 cores."""
        assert results["rss"].imbalance > 1.7
        assert results["ntuple"].imbalance <= 1.3

    def test_cycle_totals_identical_across_policies(self, results):
        """Steering moves packets, never changes what they cost."""
        totals = {r.total_cycles for r in results.values()}
        assert len(totals) == 1
        categories = [r.by_category for r in results.values()]
        assert categories[0] == categories[1] == categories[2]
        actions = [r.actions for r in results.values()]
        assert actions[0] == actions[1] == actions[2]

    def test_imbalance_is_throughput(self, results):
        """Lower imbalance is exactly higher aggregate PPS."""
        assert (
            results["ntuple"].aggregate_pps
            > results["rekey"].aggregate_pps
            > results["rss"].aggregate_pps
        )


class TestFlowAffinity:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_every_policy_preserves_flow_affinity(self, name):
        trace = zipf_trace(n_packets=6000, n_flows=512)
        disp = RssDispatcher(countmin_factory, n_cores=4, steering=name)
        disp.run(trace)
        owner = {}
        # Re-derive placement from the fitted policy; every packet of a
        # flow must map to one queue.
        for pkt in trace:
            queue = disp.queue_of(pkt)
            assert owner.setdefault(pkt.key_int, queue) == queue

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_sharded_sketch_still_merges_exactly(self, name):
        """Disjoint sharding holds under any steering: merge == single."""
        trace = zipf_trace(n_packets=6000, n_flows=512)
        disp = RssDispatcher(countmin_factory, n_cores=4, steering=name)
        disp.run(trace)
        ref = countmin_factory(0)
        XdpPipeline(ref).run(trace)
        assert merged_countmin_rows(disp.nfs) == ref.rows


class TestRekey:
    def test_deterministic_seed_choice(self):
        trace = zipf_trace(n_packets=5000)
        a = RekeySteering(N_CORES)
        b = RekeySteering(N_CORES)
        a.prepare(trace[: a.sample_size])
        b.prepare(trace[: b.sample_size])
        assert a.hash_seed == b.hash_seed
        assert a.sample_imbalance == b.sample_imbalance

    def test_never_worse_than_base_seed_on_sample(self):
        """Candidate 0 is the base seed, so the search can't regress."""
        trace = zipf_trace(n_packets=5000)
        base = RssSteering(N_CORES)
        rekey = RekeySteering(N_CORES)
        sample = trace[: rekey.sample_size]
        rekey.prepare(sample)
        loads_base = [0] * N_CORES
        loads_rekey = [0] * N_CORES
        for pkt in sample:
            loads_base[base.queue_of(pkt)] += 1
            loads_rekey[rekey.queue_of(pkt)] += 1

        def imb(loads):
            return max(loads) * len(loads) / sum(loads)

        assert imb(loads_rekey) <= imb(loads_base)

    def test_empty_sample_keeps_base_seed(self):
        rekey = RekeySteering(N_CORES)
        rekey.prepare([])
        assert rekey.hash_seed == RSS_HASH_SEED
        assert rekey.sample_imbalance is None


class TestNtuple:
    def test_pins_heaviest_flows(self):
        trace = zipf_trace(n_packets=8000)
        policy = NtupleSteering(N_CORES)
        policy.prepare(trace[: policy.sample_size])
        assert 0 < len(policy.pinned) <= policy.top_k
        # The single heaviest sampled flow must be pinned.
        from collections import Counter

        heaviest = Counter(
            p.key_int for p in trace[: policy.sample_size]
        ).most_common(1)[0][0]
        assert heaviest in policy.pinned

    def test_untrained_policy_routes_like_rss(self):
        """Before prepare(), the round-robin table mirrors plain RSS."""
        plain = RssSteering(8)
        ntuple = NtupleSteering(8)  # 8 divides 128
        for pkt in zipf_trace(n_packets=500, n_flows=64):
            assert ntuple.queue_of(pkt) == plain.queue_of(pkt)

    def test_describe_reports_fitted_state(self):
        trace = zipf_trace(n_packets=5000)
        policy = NtupleSteering(N_CORES)
        policy.prepare(trace[: policy.sample_size])
        info = policy.describe()
        assert info["policy"] == "ntuple"
        assert info["n_pinned"] == len(policy.pinned)
        assert info["table_size"] == 128

    def test_prepare_is_deterministic(self):
        trace = zipf_trace(n_packets=5000)
        a = NtupleSteering(N_CORES)
        b = NtupleSteering(N_CORES)
        a.prepare(trace[: a.sample_size])
        b.prepare(trace[: b.sample_size])
        assert a.pinned == b.pinned
        assert a.table == b.table
