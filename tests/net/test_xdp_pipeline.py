"""Tests for the XDP pipeline simulator."""

import pytest

from repro.ebpf.cost_model import CPU_HZ, Category, ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.packet import XdpAction
from repro.net.xdp import BASE_WIRE_LATENCY_NS, XdpPipeline, warm_then_measure


class FixedCostNF:
    """Charges a constant per packet and returns a fixed action."""

    def __init__(self, cycles=100, action=XdpAction.DROP, mode=ExecMode.PURE_EBPF):
        self.rt = BpfRuntime(mode=mode)
        self.cost = cycles
        self.action = action

    def process(self, packet):
        self.rt.charge(self.cost, Category.OTHER)
        return self.action


class TestPipeline:
    def test_counts_actions(self):
        nf = FixedCostNF(action=XdpAction.TX)
        trace = FlowGenerator(8, seed=1).trace(50)
        result = XdpPipeline(nf).run(trace)
        assert result.n_packets == 50
        assert result.actions == {XdpAction.TX: 50}

    def test_cycles_per_packet_includes_framework(self):
        nf = FixedCostNF(cycles=100)
        trace = FlowGenerator(8, seed=1).trace(10)
        result = XdpPipeline(nf).run(trace)
        costs = nf.rt.costs
        expected = 100 + costs.xdp_dispatch + costs.packet_parse
        assert result.cycles_per_packet == pytest.approx(expected)

    def test_framework_charges_can_be_disabled(self):
        nf = FixedCostNF(cycles=100)
        trace = FlowGenerator(8, seed=1).trace(10)
        result = XdpPipeline(nf, charge_framework=False).run(trace)
        assert result.cycles_per_packet == pytest.approx(100)

    def test_pps_derivation(self):
        nf = FixedCostNF(cycles=2100)   # +100 framework = 2200 cycles
        trace = FlowGenerator(8, seed=1).trace(10)
        result = XdpPipeline(nf).run(trace)
        assert result.pps == pytest.approx(CPU_HZ / result.cycles_per_packet)
        assert result.mpps == pytest.approx(result.pps / 1e6)

    def test_invalid_action_rejected(self):
        nf = FixedCostNF(action="XDP_EXPLODE")
        trace = FlowGenerator(8, seed=1).trace(1)
        with pytest.raises(ValueError):
            XdpPipeline(nf).run(trace)

    def test_latency_includes_wire_and_processing(self):
        nf = FixedCostNF(cycles=22_000)   # 10 us of processing
        trace = FlowGenerator(8, seed=1).trace(5)
        result = XdpPipeline(nf).run(trace, measure_latency=True)
        expected_us = (2 * BASE_WIRE_LATENCY_NS) / 1000 + 10.0
        assert result.avg_latency_us == pytest.approx(expected_us, rel=0.02)

    def test_clock_advances_with_trace(self):
        nf = FixedCostNF()
        trace = FlowGenerator(8, seed=1).trace(10, inter_arrival_ns=1000)
        XdpPipeline(nf).run(trace)
        assert nf.rt.now_ns == 9000

    def test_behavior_share(self):
        nf = FixedCostNF(cycles=100)
        trace = FlowGenerator(8, seed=1).trace(10)
        result = XdpPipeline(nf).run(trace)
        assert 0 < result.behavior_share(Category.OTHER) < 1
        total = (
            result.behavior_share(Category.OTHER)
            + result.behavior_share(Category.FRAMEWORK)
            + result.behavior_share(Category.PARSE)
        )
        assert total == pytest.approx(1.0)

    def test_warm_then_measure_excludes_warmup(self):
        nf = FixedCostNF(cycles=50)
        fg = FlowGenerator(8, seed=1)
        result = warm_then_measure(XdpPipeline(nf), fg.trace(100), fg.trace(10))
        assert result.n_packets == 10

    def test_empty_trace(self):
        nf = FixedCostNF()
        result = XdpPipeline(nf).run([])
        assert result.n_packets == 0
        assert result.pps == 0.0
        assert result.proc_time_ns == 0.0
        assert result.avg_latency_us == 0.0


class TestLatencyAtLoad:
    def _result(self, cycles=2100):
        nf = FixedCostNF(cycles=cycles)
        trace = FlowGenerator(8, seed=1).trace(10)
        return XdpPipeline(nf).run(trace)

    def test_low_load_is_wire_dominated(self):
        result = self._result()
        low = result.latency_at_load_us(1000)
        assert low == pytest.approx(2 * BASE_WIRE_LATENCY_NS / 1000 + 1.0, rel=0.01)

    def test_latency_grows_with_load(self):
        result = self._result()
        assert (
            result.latency_at_load_us(1e3)
            < result.latency_at_load_us(result.pps * 0.5)
            < result.latency_at_load_us(result.pps * 0.95)
        )

    def test_saturation_is_infinite(self):
        result = self._result()
        assert result.latency_at_load_us(result.pps) == float("inf")
        assert result.latency_at_load_us(result.pps * 2) == float("inf")

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            self._result().latency_at_load_us(0)
