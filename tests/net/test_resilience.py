"""Data-plane hardening: containment, fault accounting, watchdog."""

import pytest

from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.faults import PKT_DROP, PKT_DUP, FaultPlan
from repro.net.flowgen import FlowGenerator
from repro.net.multicore import (
    AllCoresDeadError,
    CoreFailure,
    RssDispatcher,
)
from repro.net.packet import XdpAction
from repro.net.xdp import HELPER_ERROR, PARSE_ERROR, XdpPipeline
from repro.nfs import CountMinNF


def trace(n, seed=5, n_flows=512):
    fg = FlowGenerator(n_flows=n_flows, seed=seed, distribution="zipf")
    return fg.trace(n)


def countmin_factory(core):
    return CountMinNF(BpfRuntime(mode=ExecMode.ENETSTL, seed=core), depth=4)


class ExplodingNF:
    """NF that raises on every k-th packet (per-packet path only)."""

    def __init__(self, rt, every=3):
        self.rt = rt
        self.every = every
        self.seen = 0

    def process(self, packet):
        self.seen += 1
        if self.seen % self.every == 0:
            raise RuntimeError("boom")
        return XdpAction.PASS


class ExplodingBatchNF(ExplodingNF):
    """Adds a process_batch that explodes when the batch spans a fault."""

    def process_batch(self, packets):
        out = {}
        for pkt in packets:
            action = self.process(pkt)
            out[action] = out.get(action, 0) + 1
        return out


class TestContainment:
    def test_nf_exception_becomes_aborted(self):
        pipeline = XdpPipeline(ExplodingNF(BpfRuntime()))
        result = pipeline.run(trace(30))
        assert result.aborted == 10
        assert result.actions[XdpAction.PASS] == 20
        assert result.errors == {"RuntimeError": 10}
        assert result.n_packets == 30
        assert result.n_packets == result.forwarded + result.dropped + result.aborted

    def test_on_error_raise_propagates(self):
        pipeline = XdpPipeline(ExplodingNF(BpfRuntime()), on_error="raise")
        with pytest.raises(RuntimeError, match="boom"):
            pipeline.run(trace(30))

    def test_on_error_validated(self):
        with pytest.raises(ValueError):
            XdpPipeline(ExplodingNF(BpfRuntime()), on_error="ignore")

    def test_invalid_action_still_hard_error(self):
        class BadNF:
            def __init__(self, rt):
                self.rt = rt

            def process(self, packet):
                return "XDP_NONSENSE"

        pipeline = XdpPipeline(BadNF(BpfRuntime()))
        with pytest.raises(ValueError, match="invalid XDP action"):
            pipeline.run(trace(1))

    def test_batch_path_contains_per_packet_fallback(self):
        pipeline = XdpPipeline(ExplodingNF(BpfRuntime()))
        result = pipeline.run_batch(trace(30), batch_size=8)
        assert result.aborted == 10
        assert result.errors == {"RuntimeError": 10}
        assert result.n_packets == 30

    def test_batch_exception_aborts_whole_batch(self):
        pipeline = XdpPipeline(ExplodingBatchNF(BpfRuntime(), every=100))
        result = pipeline.run_batch(trace(300), batch_size=64)
        # Batches containing packet 100/200/300 abort wholesale; the
        # rest pass.  Every packet still lands in exactly one verdict.
        assert result.n_packets == 300
        assert result.aborted > 0
        assert result.aborted % 64 == 0
        assert result.errors["RuntimeError"] == result.aborted // 64


class TestInjectedFaults:
    def test_fault_free_run_unchanged(self):
        t = trace(1000)
        plain = XdpPipeline(countmin_factory(0)).run_batch(t)
        with_plan = XdpPipeline(
            countmin_factory(0), faults=FaultPlan(seed=1).injector()
        ).run_batch(t)
        assert with_plan.n_packets == plain.n_packets
        assert with_plan.actions == plain.actions
        assert with_plan.total_cycles == plain.total_cycles

    def test_run_and_run_batch_identical_schedules(self):
        t = trace(2000)
        plan = FaultPlan.uniform(0.02, seed=13)
        per_packet = XdpPipeline(
            countmin_factory(0), faults=plan.injector()
        ).run(t)
        batched = XdpPipeline(
            countmin_factory(0), faults=plan.injector()
        ).run_batch(t, batch_size=128)
        assert per_packet.actions == batched.actions
        assert per_packet.errors == batched.errors
        assert per_packet.n_packets == batched.n_packets
        assert per_packet.total_cycles == batched.total_cycles

    def test_drop_faults_account_without_charges(self):
        t = trace(500)
        plan = FaultPlan(drop_rate=1.0, seed=3)
        result = XdpPipeline(
            countmin_factory(0), faults=plan.injector()
        ).run(t)
        assert result.dropped == 500
        assert result.total_cycles == 0

    def test_parse_faults_abort_with_error_tag(self):
        plan = FaultPlan(corrupt_rate=1.0, seed=3)
        result = XdpPipeline(
            countmin_factory(0), faults=plan.injector()
        ).run(trace(100))
        assert result.aborted == 100
        assert result.errors == {PARSE_ERROR: 100}

    def test_helper_faults_abort_with_error_tag(self):
        plan = FaultPlan(helper_rate=1.0, seed=3)
        result = XdpPipeline(
            countmin_factory(0), faults=plan.injector()
        ).run_batch(trace(100))
        assert result.aborted == 100
        assert result.errors == {HELPER_ERROR: 100}

    def test_duplicates_add_verdicts(self):
        plan = FaultPlan(dup_rate=1.0, seed=3)
        injector = plan.injector()
        result = XdpPipeline(countmin_factory(0), faults=injector).run(
            trace(100)
        )
        assert injector.injected[PKT_DUP] == 100
        assert result.n_packets == 200
        assert result.actions[XdpAction.DROP] == 200


class TestWatchdog:
    def test_crash_resteers_to_survivors(self):
        plan = FaultPlan(crash_core=1, crash_at=100, seed=5)
        dispatcher = RssDispatcher(countmin_factory, n_cores=4, faults=plan)
        result = dispatcher.run(trace(4000), batch_size=64)
        assert result.is_fully_accounted
        assert result.lost == 0
        assert result.n_packets == 4000
        [failure] = result.failures
        assert isinstance(failure, CoreFailure)
        assert failure.kind == "crash" and failure.core == 1
        assert failure.processed == 100
        assert failure.resteered > 0
        assert result.per_core[1].n_packets == 100
        # The victim's later traffic landed on the survivors.
        assert sum(r.n_packets for r in result.per_core) == 4000

    def test_crash_at_zero_kills_core_before_any_packet(self):
        plan = FaultPlan(crash_core=2, crash_at=0)
        dispatcher = RssDispatcher(countmin_factory, n_cores=4, faults=plan)
        result = dispatcher.run(trace(2000), batch_size=64)
        assert result.per_core[2].n_packets == 0
        assert result.is_fully_accounted
        assert result.n_packets == 2000

    def test_wedge_loses_deadline_then_resteers(self):
        plan = FaultPlan(wedge_core=0, wedge_at=50)
        dispatcher = RssDispatcher(
            countmin_factory, n_cores=4, faults=plan, watchdog_deadline=128
        )
        result = dispatcher.run(trace(6000), batch_size=64)
        assert result.is_fully_accounted
        [failure] = result.failures
        assert failure.kind == "wedge" and failure.core == 0
        assert failure.processed == 50
        assert result.lost >= 128          # at least the deadline drained
        assert failure.resteered > 0       # traffic moved after detection
        assert result.n_packets == 6000 - result.lost
        assert result.dropped >= result.lost

    def test_wedge_below_deadline_detected_at_teardown(self):
        plan = FaultPlan(wedge_core=0, wedge_at=10)
        dispatcher = RssDispatcher(
            countmin_factory, n_cores=4, faults=plan, watchdog_deadline=10_000
        )
        result = dispatcher.run(trace(2000), batch_size=64)
        assert result.is_fully_accounted
        [failure] = result.failures
        assert failure.kind == "wedge"
        assert result.lost > 0

    def test_all_cores_dead_raises(self):
        plan = FaultPlan(crash_core=0, crash_at=0)
        dispatcher = RssDispatcher(countmin_factory, n_cores=1, faults=plan)
        with pytest.raises(AllCoresDeadError):
            dispatcher.run(trace(100))

    def test_watchdog_deadline_validated(self):
        with pytest.raises(ValueError):
            RssDispatcher(countmin_factory, n_cores=2, watchdog_deadline=0)

    def test_failover_preserves_flow_affinity(self):
        """Post-failure, each flow sticks to one surviving core."""
        plan = FaultPlan(crash_core=1, crash_at=0)

        seen = {}

        def spy_factory(core):
            nf = countmin_factory(core)
            original = nf.process_batch

            def record(packets, _core=core, _orig=original):
                for pkt in packets:
                    seen.setdefault(pkt.key_int, set()).add(_core)
                return _orig(packets)

            nf.process_batch = record
            return nf

        dispatcher = RssDispatcher(spy_factory, n_cores=4, faults=plan)
        dispatcher.run(trace(4000), batch_size=64)
        assert all(len(cores) == 1 for cores in seen.values())
        assert all(1 not in cores for cores in seen.values())


class TestMulticoreAccounting:
    def test_healthy_run_fully_accounted(self):
        dispatcher = RssDispatcher(countmin_factory, n_cores=4)
        result = dispatcher.run(trace(3000))
        assert result.packets_in == 3000
        assert result.is_fully_accounted
        assert result.failures == [] and result.lost == 0

    def test_faulty_run_fully_accounted(self):
        plan = FaultPlan.uniform(0.03, seed=21)
        dispatcher = RssDispatcher(countmin_factory, n_cores=4, faults=plan)
        result = dispatcher.run(trace(5000), batch_size=128)
        assert result.is_fully_accounted
        assert sum(result.injected.values()) > 0
        acc = result.accounting()
        assert acc["packets_in"] == 5000
        assert (
            acc["packets_in"] + acc["duplicated"]
            == acc["forwarded"] + acc["dropped"] + acc["aborted"]
        )

    def test_seeded_runs_bit_identical(self):
        """Satellite: identical plans -> identical BENCH-style metrics."""
        plan = FaultPlan.uniform(0.02, seed=33)

        def run():
            dispatcher = RssDispatcher(
                countmin_factory, n_cores=4, faults=FaultPlan.uniform(0.02, seed=33)
            )
            return dispatcher.run(trace(4000), batch_size=128)

        a, b = run(), run()
        assert a.accounting() == b.accounting()
        assert a.injected == b.injected
        assert a.errors == b.errors
        assert a.per_core_cycles == b.per_core_cycles
        assert a.aggregate_pps == b.aggregate_pps

    def test_per_core_injectors_are_decorrelated(self):
        plan = FaultPlan(drop_rate=0.05, seed=3)
        dispatcher = RssDispatcher(countmin_factory, n_cores=4, faults=plan)
        dispatcher.run(trace(4000))
        drops = [inj.injected.get(PKT_DROP, 0) for inj in dispatcher.injectors]
        assert sum(drops) > 0
        # With decorrelated streams the exact counts differ across cores.
        assert len(set(drops)) > 1
