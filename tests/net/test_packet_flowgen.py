"""Tests for packets, flow generation, and stats helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.net.flowgen import (
    DISTRIBUTIONS,
    FlowGenerator,
    make_flows,
    rate_to_inter_arrival_ns,
)
from repro.net.packet import MIN_FRAME_BYTES, Packet, PROTO_UDP, XdpAction
from repro.net.stats import geo_mean, mean, percentile, relative_error, stdev


class TestPacket:
    def test_five_tuple(self):
        p = Packet(1, 2, 3, 4, 5)
        assert p.five_tuple == (1, 2, 3, 4, 5)

    def test_key_int_packs_uniquely(self):
        a = Packet(1, 2, 3, 4, 5)
        b = Packet(2, 1, 3, 4, 5)
        c = Packet(1, 2, 4, 3, 5)
        assert len({a.key_int, b.key_int, c.key_int}) == 3

    @given(
        st.integers(0, 0xFFFFFFFF),
        st.integers(0, 0xFFFFFFFF),
        st.integers(0, 0xFFFF),
        st.integers(0, 0xFFFF),
        st.integers(0, 0xFF),
    )
    def test_key_int_roundtrips(self, src, dst, sp, dp, proto):
        p = Packet(src, dst, sp, dp, proto)
        k = p.key_int
        assert k & 0xFFFFFFFF == src
        assert k >> 32 & 0xFFFFFFFF == dst
        assert k >> 64 & 0xFFFF == sp
        assert k >> 80 & 0xFFFF == dp
        assert k >> 96 & 0xFF == proto

    def test_validation(self):
        with pytest.raises(ValueError):
            Packet(-1, 0, 0, 0)
        with pytest.raises(ValueError):
            Packet(0, 0, 70000, 0)
        with pytest.raises(ValueError):
            Packet(0, 0, 0, 0, proto=300)
        with pytest.raises(ValueError):
            Packet(0, 0, 0, 0, size=10)

    def test_with_timestamp(self):
        p = Packet(1, 2, 3, 4).with_timestamp(999)
        assert p.timestamp_ns == 999
        assert p.five_tuple == (1, 2, 3, 4, PROTO_UDP)

    def test_xdp_actions(self):
        assert XdpAction.DROP in XdpAction.ALL
        assert len(XdpAction.ALL) == 5


class TestFlowGenerator:
    def test_make_flows_distinct(self):
        flows = make_flows(500, seed=2)
        assert len({f.five_tuple for f in flows}) == 500

    def test_deterministic_per_seed(self):
        a = FlowGenerator(64, seed=5).trace(100)
        b = FlowGenerator(64, seed=5).trace(100)
        assert [p.five_tuple for p in a] == [p.five_tuple for p in b]

    def test_trace_draws_from_flow_population(self):
        fg = FlowGenerator(16, seed=1)
        population = {f.five_tuple for f in fg.flows}
        assert all(p.five_tuple in population for p in fg.trace(200))

    def test_zipf_skews_toward_head(self):
        fg = FlowGenerator(256, distribution="zipf", zipf_s=1.2, seed=1)
        counts = {}
        for p in fg.trace(5000):
            counts[p.five_tuple] = counts.get(p.five_tuple, 0) + 1
        top = max(counts.values())
        assert top > 5000 / 256 * 10   # heavily skewed

    def test_uniform_is_roughly_even(self):
        fg = FlowGenerator(16, distribution="uniform", seed=1)
        counts = {}
        for p in fg.trace(8000):
            counts[p.five_tuple] = counts.get(p.five_tuple, 0) + 1
        assert max(counts.values()) < 3 * min(counts.values())

    def test_round_robin_cycles(self):
        fg = FlowGenerator(4, distribution="round_robin", seed=1)
        trace = fg.trace(8)
        assert [p.five_tuple for p in trace[:4]] == [
            p.five_tuple for p in trace[4:]
        ]

    def test_timestamps_spaced(self):
        fg = FlowGenerator(4, seed=1)
        trace = fg.trace(5, inter_arrival_ns=100)
        assert [p.timestamp_ns for p in trace] == [0, 100, 200, 300, 400]

    def test_invalid_distribution(self):
        with pytest.raises(ValueError):
            FlowGenerator(4, distribution="pareto")

    def test_rate_conversion(self):
        assert rate_to_inter_arrival_ns(1e6) == 1000
        with pytest.raises(ValueError):
            rate_to_inter_arrival_ns(0)


class TestStats:
    def test_mean_stdev(self):
        assert mean([1, 2, 3]) == 2
        assert stdev([2, 2, 2]) == 0
        assert stdev([1]) == 0

    def test_percentile(self):
        data = list(range(1, 101))
        assert percentile(data, 50) == pytest.approx(50.5)
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 100

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_geo_mean(self):
        assert geo_mean([1, 100]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geo_mean([0, 1])

    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            relative_error(1, 0)
