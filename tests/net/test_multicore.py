"""Tests for the multi-queue RSS data plane (repro.net.multicore)."""

import pytest

from repro.ebpf.cost_model import ExecMode, NumaTopology
from repro.ebpf.percpu import merge_breakdowns, or_words, sum_matrices, sum_vectors
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.multicore import (
    RssDispatcher,
    merged_bloom_contains,
    merged_bloom_words,
    merged_countmin_estimate,
    merged_countmin_rows,
    merged_nitrosketch_estimate,
    rss_queue,
    shard_trace,
)
from repro.net.xdp import XdpPipeline
from repro.nfs import BloomFilterNF, CountMinNF, MaglevNF, NitroSketchNF


def countmin_factory(mode=ExecMode.ENETSTL, depth=4):
    return lambda core: CountMinNF(BpfRuntime(mode=mode, seed=core), depth=depth)


class TestRssSharding:
    def test_flow_affinity(self):
        """Every packet of a flow lands on the same queue."""
        fg = FlowGenerator(n_flows=64, seed=2)
        trace = fg.trace(2000)
        queues = shard_trace(trace, 4)
        owner = {}
        for core, queue in enumerate(queues):
            for pkt in queue:
                assert owner.setdefault(pkt.key_int, core) == core

    def test_sharding_is_complete_and_order_preserving(self):
        fg = FlowGenerator(n_flows=64, seed=2)
        trace = fg.trace(500)
        queues = shard_trace(trace, 4)
        assert sum(len(q) for q in queues) == 500
        for core, queue in enumerate(queues):
            expected = [p for p in trace if rss_queue(p, 4) == core]
            assert queue == expected

    def test_single_queue_passthrough(self):
        fg = FlowGenerator(n_flows=8, seed=2)
        trace = fg.trace(100)
        assert shard_trace(trace, 1) == [trace]

    def test_bad_core_count(self):
        fg = FlowGenerator(n_flows=8, seed=2)
        with pytest.raises(ValueError):
            rss_queue(fg.flows[0], 0)


class TestRssDispatcher:
    def test_uniform_trace_scales(self):
        """Aggregate PPS reaches >= 6x single-core at 8 cores (uniform)."""
        fg = FlowGenerator(n_flows=2048, seed=5)
        trace = fg.trace(16000)
        single = XdpPipeline(countmin_factory()(0)).run(trace)
        result = RssDispatcher(countmin_factory(), n_cores=8).run(trace)
        assert result.n_packets == 16000
        assert result.speedup_over(single) >= 6.0
        assert result.aggregate_pps > single.pps

    def test_zipf_trace_skews_imbalance(self):
        fg_uni = FlowGenerator(n_flows=2048, seed=5)
        fg_zipf = FlowGenerator(n_flows=2048, seed=5, distribution="zipf")
        uni = RssDispatcher(countmin_factory(), n_cores=8).run(fg_uni.trace(12000))
        zipf = RssDispatcher(countmin_factory(), n_cores=8).run(fg_zipf.trace(12000))
        assert zipf.imbalance > 1.0
        assert zipf.imbalance > uni.imbalance
        # Imbalance is exactly the aggregate-throughput penalty.
        ideal = zipf.n_packets * 2_200_000_000 / (zipf.total_cycles / zipf.n_cores)
        assert zipf.aggregate_pps == pytest.approx(ideal / zipf.imbalance)

    def test_batch_and_per_packet_paths_agree(self):
        fg = FlowGenerator(n_flows=256, seed=7)
        trace = fg.trace(4000)
        batched = RssDispatcher(countmin_factory(), n_cores=4).run(trace)
        unbatched = RssDispatcher(countmin_factory(), n_cores=4).run(
            trace, use_batch=False
        )
        assert batched.per_core_cycles == unbatched.per_core_cycles
        assert batched.actions == unbatched.actions
        assert batched.by_category == unbatched.by_category

    def test_shared_runtime_rejected(self):
        rt = BpfRuntime(mode=ExecMode.ENETSTL)
        with pytest.raises(ValueError):
            RssDispatcher(lambda core: CountMinNF(rt), n_cores=2)

    def test_actions_aggregate(self):
        fg = FlowGenerator(n_flows=64, seed=9)
        trace = fg.trace(1000)
        factory = lambda core: MaglevNF(BpfRuntime(mode=ExecMode.KERNEL, seed=core))
        result = RssDispatcher(factory, n_cores=4).run(trace)
        assert result.actions == {"XDP_REDIRECT": 1000}

    def test_lossless_capture_check(self):
        fg = FlowGenerator(n_flows=2048, seed=5)
        trace = fg.trace(8000)
        result = RssDispatcher(countmin_factory(), n_cores=4).run(trace)
        assert result.lossless_at(0.0)
        assert result.lossless_at(result.max_lossless_pps * 0.99)
        assert not result.lossless_at(result.max_lossless_pps * 1.01)
        # The fleet absorbs more than one core can.
        single = XdpPipeline(countmin_factory()(0)).run(trace)
        assert result.max_lossless_pps > single.pps

    def test_jit_backend_matches_interp_under_dispatch(self):
        """JIT'd IR NFs run on the batched multi-core path and produce
        the same per-core cycles, verdicts, and breakdowns as the
        interpreter backend."""
        from repro.ebpf.progs import get_case
        from repro.net.irnf import IrNf

        prog = get_case("nf_classifier").prog
        fg = FlowGenerator(n_flows=256, seed=13)
        trace = fg.trace(2000)
        results = {}
        for backend in ("interp", "jit"):
            factory = lambda core: IrNf(
                BpfRuntime(mode=ExecMode.ENETSTL, seed=core),
                prog, seed=core, backend=backend,
            )
            results[backend] = RssDispatcher(factory, n_cores=4).run(
                trace, use_batch=True
            )
        interp, jit = results["interp"], results["jit"]
        assert jit.per_core_cycles == interp.per_core_cycles
        assert jit.actions == interp.actions
        assert jit.by_category == interp.by_category

    def test_empty_trace(self):
        result = RssDispatcher(countmin_factory(), n_cores=4).run([])
        assert result.n_packets == 0
        assert result.aggregate_pps == 0.0
        assert result.imbalance == 1.0
        assert result.lossless_at(1e9)
        assert result.max_lossless_pps == float("inf")


class TestNumaTopology:
    def test_node_of_contiguous_blocks(self):
        numa = NumaTopology(n_nodes=2)
        assert [numa.node_of(c, 8) for c in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_node_of_interleaved(self):
        numa = NumaTopology(n_nodes=2, interleave=True)
        assert [numa.node_of(c, 8) for c in range(8)] == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_node_of_uneven_core_count(self):
        numa = NumaTopology(n_nodes=2)
        nodes = [numa.node_of(c, 6) for c in range(6)]
        assert nodes == sorted(nodes)
        assert set(nodes) == {0, 1}

    def test_packet_penalty(self):
        numa = NumaTopology(n_nodes=2, remote_packet_cycles=60)
        assert numa.packet_penalty_cycles(0, 8) == 0  # NIC-local node
        assert numa.packet_penalty_cycles(7, 8) == 60

    def test_single_node_never_penalizes(self):
        numa = NumaTopology(n_nodes=1)
        assert all(numa.packet_penalty_cycles(c, 8) == 0 for c in range(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            NumaTopology(n_nodes=0)
        with pytest.raises(ValueError):
            NumaTopology(n_nodes=2, nic_node=2)
        with pytest.raises(ValueError):
            NumaTopology(n_nodes=2, remote_packet_cycles=-1)


class TestNumaDispatch:
    def _run(self, numa):
        fg = FlowGenerator(n_flows=512, seed=5, distribution="zipf")
        return RssDispatcher(countmin_factory(), n_cores=8, numa=numa).run(
            fg.trace(6000)
        )

    def test_nf_cycles_bit_identical_across_topologies(self):
        """The penalty is a memory-system effect, not NF work: cycle
        accounting (totals and categories) must not change."""
        local = self._run(None)
        remote = self._run(NumaTopology(n_nodes=2))
        assert remote.total_cycles == local.total_cycles
        assert remote.per_core_cycles == local.per_core_cycles
        assert remote.by_category == local.by_category

    def test_penalty_lowers_wall_clock_metrics(self):
        local = self._run(None)
        remote = self._run(NumaTopology(n_nodes=2))
        assert remote.total_numa_cycles > 0
        assert remote.aggregate_pps <= local.aggregate_pps
        assert remote.wall_time_s >= local.wall_time_s
        assert remote.max_lossless_pps <= local.max_lossless_pps

    def test_penalty_accounting_is_per_packet(self):
        numa = NumaTopology(n_nodes=2, remote_packet_cycles=60)
        result = self._run(numa)
        for core, r in enumerate(result.per_core):
            expected = numa.packet_penalty_cycles(core, 8) * r.n_packets
            assert result.numa_cycles[core] == expected
        loaded = result.per_core_loaded_cycles
        assert loaded == [
            c + p for c, p in zip(result.per_core_cycles, result.numa_cycles)
        ]

    def test_single_node_topology_is_a_noop(self):
        local = self._run(None)
        one_node = self._run(NumaTopology(n_nodes=1))
        assert one_node.total_numa_cycles == 0
        assert one_node.aggregate_pps == local.aggregate_pps
        assert one_node.imbalance == local.imbalance


class TestPercpuMerge:
    def _sharded_and_reference(self, mode, depth=4, n_packets=6000):
        fg = FlowGenerator(n_flows=512, seed=11, distribution="zipf")
        trace = fg.trace(n_packets)
        factory = lambda core: CountMinNF(BpfRuntime(mode=mode, seed=core), depth=depth)
        disp = RssDispatcher(factory, n_cores=4)
        disp.run(trace)
        ref = CountMinNF(BpfRuntime(mode=mode, seed=0), depth=depth)
        XdpPipeline(ref).run(trace)
        return disp, ref, fg

    @pytest.mark.parametrize("mode", list(ExecMode))
    def test_sharded_countmin_equals_single_core(self, mode):
        disp, ref, fg = self._sharded_and_reference(mode)
        assert merged_countmin_rows(disp.nfs) == ref.rows
        for flow in fg.flows[:32]:
            key = flow.key_int
            assert merged_countmin_estimate(disp.nfs, key) == ref.true_free_estimate(key)

    def test_sharded_countmin_crc_path(self):
        """depth <= 2 uses the CRC column layout; merge must follow it."""
        disp, ref, fg = self._sharded_and_reference(ExecMode.ENETSTL, depth=2)
        for flow in fg.flows[:16]:
            key = flow.key_int
            assert merged_countmin_estimate(disp.nfs, key) == ref.true_free_estimate(key)

    def test_sharded_bloom_equals_single_core(self):
        fg = FlowGenerator(n_flows=128, seed=13)
        members = [f.key_int for f in fg.flows[:64]]
        factory = lambda core: BloomFilterNF(BpfRuntime(mode=ExecMode.ENETSTL, seed=core))
        disp = RssDispatcher(factory, n_cores=4)
        # Each core learns only the members RSS steers to it.
        for pkt in fg.flows[:64]:
            disp.nfs[disp.queue_of(pkt)].populate([pkt.key_int])
        ref = BloomFilterNF(BpfRuntime(mode=ExecMode.ENETSTL, seed=0))
        ref.populate(members)
        assert merged_bloom_words(disp.nfs) == ref.words
        for f in fg.flows:
            expected = all(
                ref.words[bit // 64] >> (bit % 64) & 1
                for bit in ref._positions(f.key_int)
            )
            assert merged_bloom_contains(disp.nfs, f.key_int) == expected
        for key in members:
            assert merged_bloom_contains(disp.nfs, key)

    def test_sharded_nitrosketch_merges(self):
        fg = FlowGenerator(n_flows=256, seed=17, distribution="zipf")
        trace = fg.trace(8000)
        factory = lambda core: NitroSketchNF(
            BpfRuntime(mode=ExecMode.KERNEL, seed=core), depth=4, update_prob=1.0
        )
        disp = RssDispatcher(factory, n_cores=4)
        disp.run(trace, use_batch=False)
        ref = NitroSketchNF(BpfRuntime(mode=ExecMode.KERNEL, seed=0), depth=4, update_prob=1.0)
        XdpPipeline(ref).run(trace)
        # p=1.0 makes NitroSketch deterministic: every row updates on
        # every packet, so the sharded merge is exact.
        for flow in fg.flows[:16]:
            assert merged_nitrosketch_estimate(disp.nfs, flow.key_int) == pytest.approx(
                ref.estimate(flow.key_int)
            )

    def test_merge_shape_validation(self):
        a = CountMinNF(BpfRuntime(seed=0), depth=4)
        b = CountMinNF(BpfRuntime(seed=1), depth=8)
        with pytest.raises(ValueError):
            merged_countmin_rows([a, b])
        with pytest.raises(ValueError):
            merged_countmin_rows([])


class TestPercpuPrimitives:
    def test_sum_vectors(self):
        assert sum_vectors([[1, 2], [3, 4], [5, 6]]) == [9, 12]
        with pytest.raises(ValueError):
            sum_vectors([[1], [1, 2]])
        with pytest.raises(ValueError):
            sum_vectors([])

    def test_sum_matrices(self):
        assert sum_matrices([[[1, 0], [0, 1]], [[2, 2], [2, 2]]]) == [[3, 2], [2, 3]]
        with pytest.raises(ValueError):
            sum_matrices([[[1]], [[1], [2]]])

    def test_or_words(self):
        assert or_words([[0b01, 0b10], [0b10, 0b10]]) == [0b11, 0b10]
        with pytest.raises(ValueError):
            or_words([])

    def test_merge_breakdowns(self):
        from repro.ebpf.cost_model import Category

        merged = merge_breakdowns(
            [{Category.PARSE: 5}, {Category.PARSE: 7, Category.OTHER: 1}]
        )
        assert merged == {Category.PARSE: 12, Category.OTHER: 1}
