"""SLO control loop: steering table, autoscaler, partial recovery."""

import pytest

from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.faults import FaultPlan, WedgeDetection
from repro.net.flowgen import FlowGenerator
from repro.net.queueing import ArrivalProcess, QueueingConfig
from repro.net.slo import (
    CoreAutoscaler,
    EpochStats,
    IndirectionTable,
    SloConfig,
    SloController,
    time_to_slo_s,
)
from repro.nfs import CountMinNF
from repro.nfs.degrade import ColdStartWarmup


def countmin_factory(core):
    return CountMinNF(BpfRuntime(mode=ExecMode.ENETSTL, seed=core), depth=4)


def bursty_trace(n, arrivals, seed=5, n_flows=512):
    fg = FlowGenerator(n_flows=n_flows, seed=seed, distribution="zipf")
    return list(fg.iter_trace_bursty(n, arrivals))


class TestIndirectionTable:
    def test_assign_spreads_round_robin(self):
        tbl = IndirectionTable(table_size=8)
        tbl.assign([0, 1, 2, 3])
        assert tbl.table == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_repack_moves_only_orphans(self):
        tbl = IndirectionTable(table_size=128)
        tbl.assign([0, 1, 2, 3])
        before = list(tbl.table)
        moved = tbl.repack([0, 1, 3])  # core 2 died
        assert moved == 32  # exactly the buckets that pointed at core 2
        assert 2 not in tbl.table
        # Every surviving bucket kept its placement (flow affinity).
        kept = sum(
            1 for a, b in zip(before, tbl.table) if a == b and a != 2
        )
        assert kept == 96

    def test_repack_balances_orphans(self):
        tbl = IndirectionTable(table_size=120)
        tbl.assign([0, 1, 2])
        tbl.repack([0, 1])
        assert tbl.table.count(0) == 60
        assert tbl.table.count(1) == 60

    def test_repack_onto_grown_set_feeds_newcomer(self):
        tbl = IndirectionTable(table_size=128)
        tbl.assign([0, 1])
        moved = tbl.repack([0, 1, 2])
        counts = {c: tbl.table.count(c) for c in (0, 1, 2)}
        # The newcomer gets within one bucket of an even share, and
        # nothing moved between the two incumbents.
        assert counts[2] >= 128 // 3 - 1
        assert moved == counts[2]

    def test_repack_noop_when_nothing_changed(self):
        tbl = IndirectionTable(table_size=64)
        tbl.assign([0, 1])
        assert tbl.repack([0, 1]) == 0

    def test_core_of_is_stable(self):
        tbl = IndirectionTable(table_size=64)
        tbl.assign([0, 1, 2])
        assert [tbl.core_of(k) for k in range(50)] == [
            tbl.core_of(k) for k in range(50)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            IndirectionTable(table_size=0)
        with pytest.raises(ValueError):
            IndirectionTable().assign([])
        with pytest.raises(ValueError):
            IndirectionTable().repack([])


class TestCoreAutoscaler:
    def scaler(self, **kw):
        kw.setdefault("min_cores", 1)
        kw.setdefault("max_cores", 8)
        kw.setdefault("target_p99_us", 100.0)
        kw.setdefault("cooldown_epochs", 2)
        return CoreAutoscaler(**kw)

    def test_scales_up_on_breach(self):
        assert self.scaler().decide(150.0, 4) == "up"

    def test_scales_down_when_far_under(self):
        assert self.scaler().decide(10.0, 4) == "down"

    def test_holds_inside_hysteresis_band(self):
        # Between low_water (50) and high_water (100): no action.
        assert self.scaler().decide(75.0, 4) == "hold"

    def test_respects_max_cores(self):
        assert self.scaler().decide(150.0, 8) == "hold"

    def test_respects_min_cores(self):
        assert self.scaler(min_cores=2).decide(10.0, 2) == "hold"

    def test_cooldown_after_action(self):
        s = self.scaler(cooldown_epochs=3)
        assert s.decide(150.0, 4) == "up"
        assert s.decide(150.0, 5) == "hold"
        assert s.decide(150.0, 5) == "hold"

    def test_backoff_doubles_on_failed_scale_up(self):
        s = self.scaler(cooldown_epochs=2, max_backoff_epochs=8)
        assert s.decide(150.0, 4) == "up"     # waits 2
        assert s.decide(150.0, 5) == "hold"
        assert s.decide(150.0, 5) == "up"     # still over: backoff -> 4
        assert [s.decide(150.0, 6) for _ in range(3)] == ["hold"] * 3
        assert s.decide(150.0, 6) == "up"     # backoff -> 8 (the cap)

    def test_compliant_epoch_resets_backoff(self):
        s = self.scaler(cooldown_epochs=2, max_backoff_epochs=8)
        s.decide(150.0, 4)
        s.decide(150.0, 5)
        s.decide(150.0, 5)                    # backoff now 4
        s.decide(80.0, 6)                     # under target: reset
        assert s._backoff == 2

    def test_counters(self):
        s = self.scaler(cooldown_epochs=0)
        s.decide(150.0, 4)
        s.decide(10.0, 5)
        assert s.scale_ups == 1
        assert s.scale_downs == 1

    @pytest.mark.parametrize(
        "kw",
        [
            dict(min_cores=0, max_cores=4, target_p99_us=10),
            dict(min_cores=4, max_cores=2, target_p99_us=10),
            dict(min_cores=1, max_cores=4, target_p99_us=0),
            dict(min_cores=1, max_cores=4, target_p99_us=10, low_water=1.5),
            dict(min_cores=1, max_cores=4, target_p99_us=10,
                 cooldown_epochs=4, max_backoff_epochs=2),
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            CoreAutoscaler(**kw)


class TestSloConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(target_p99_us=0),
            dict(epoch_packets=0),
            dict(min_cores=0),
            dict(low_water=0.9, high_water=0.5),
            dict(rejoin_epochs=-1),
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            SloConfig(**kw)


class TestTimeToSlo:
    def epoch(self, i, p99, span_ns=1_000_000):
        return EpochStats(
            epoch=i, start_ns=i * span_ns, end_ns=(i + 1) * span_ns,
            packets=100, active_cores=[0], p99_us=p99,
        )

    def test_none_when_never_breached(self):
        timeline = [self.epoch(i, 40.0) for i in range(5)]
        assert time_to_slo_s(timeline, 60.0) is None

    def test_none_when_never_healed(self):
        timeline = [self.epoch(i, 90.0) for i in range(5)]
        assert time_to_slo_s(timeline, 60.0) is None

    def test_breach_then_recovery(self):
        p99s = [40, 90, 90, 40, 40]
        timeline = [self.epoch(i, p) for i, p in enumerate(p99s)]
        # Breach ends at epoch 1 (2 ms); second compliant epoch ends at
        # 5 ms => 3 ms to sustained compliance.
        assert time_to_slo_s(timeline, 60.0, settle_epochs=2) == pytest.approx(
            0.003
        )

    def test_settle_requires_consecutive_compliance(self):
        p99s = [90, 40, 90, 40, 40]
        timeline = [self.epoch(i, p) for i, p in enumerate(p99s)]
        assert time_to_slo_s(timeline, 60.0, settle_epochs=2) == pytest.approx(
            0.004
        )

    def test_settle_epochs_validated(self):
        with pytest.raises(ValueError):
            time_to_slo_s([], 60.0, settle_epochs=0)


class TestColdStartWarmup:
    def test_penalty_decays_to_zero(self):
        w = ColdStartWarmup(penalty_cycles=120, tau_packets=1000)
        assert w.penalty_at(0) == 120
        assert 0 < w.penalty_at(1000) < 120
        assert w.penalty_at(w.horizon_packets) == 0

    def test_fill_fraction_monotone(self):
        w = ColdStartWarmup()
        fills = [w.fill_fraction(m) for m in range(0, 20_000, 1000)]
        assert fills == sorted(fills)
        assert fills[0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ColdStartWarmup(penalty_cycles=-1)
        with pytest.raises(ValueError):
            ColdStartWarmup(tau_packets=0)


class TestWedgeDetectionModel:
    def test_deadlines_deterministic_per_core(self):
        det = WedgeDetection(mean_packets=1024, min_packets=64, seed=3)
        assert [det.deadline_for(c) for c in range(8)] == [
            det.deadline_for(c) for c in range(8)
        ]

    def test_deadlines_spread_across_cores(self):
        det = WedgeDetection(mean_packets=1024, min_packets=64, seed=3)
        deadlines = {det.deadline_for(c) for c in range(16)}
        assert len(deadlines) > 8  # realistically spread, not constant

    def test_floor_respected(self):
        det = WedgeDetection(mean_packets=256, min_packets=100, seed=1)
        assert all(det.deadline_for(c) >= 100 for c in range(32))

    def test_degenerate_mean_equals_min(self):
        det = WedgeDetection(mean_packets=64, min_packets=64)
        assert det.deadline_for(5) == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            WedgeDetection(mean_packets=10, min_packets=64)
        with pytest.raises(ValueError):
            WedgeDetection(min_packets=0)
        with pytest.raises(ValueError):
            WedgeDetection().deadline_for(-1)


class TestSloController:
    def controller(self, **kw):
        kw.setdefault("max_cores", 4)
        kw.setdefault("queueing", QueueingConfig())
        return SloController(countmin_factory, **kw)

    def test_healthy_run_accounts_and_meets_slo(self):
        trace = bursty_trace(6000, ArrivalProcess(4e6, seed=5))
        run = self.controller(
            config=SloConfig(target_p99_us=60.0, epoch_packets=1024)
        ).run(trace)
        assert run.packets_in == 6000
        assert run.is_fully_accounted
        assert run.violating_epochs() == []
        assert run.recovery_s() is None
        assert len(run.timeline) >= 5

    def test_epoch_cadence(self):
        trace = bursty_trace(4096, ArrivalProcess(4e6, seed=5))
        run = self.controller(
            config=SloConfig(epoch_packets=1024)
        ).run(trace)
        assert [e.epoch for e in run.timeline] == list(
            range(len(run.timeline))
        )
        assert all(
            e.end_ns >= e.start_ns for e in run.timeline
        )

    def test_run_is_deterministic(self):
        trace = bursty_trace(
            6000, ArrivalProcess.flash_crowd(4e6, 2e7, 0.0002, 0.0005, seed=5)
        )

        def once():
            return self.controller(
                initial_cores=2,
                config=SloConfig(target_p99_us=60.0, epoch_packets=512),
                faults=FaultPlan(crash_core=1, crash_at=800),
                detection=WedgeDetection(seed=2),
                warmup=ColdStartWarmup(),
            ).run(trace)

        a, b = once(), once()
        assert [e.describe() for e in a.timeline] == [
            e.describe() for e in b.timeline
        ]
        assert a.latencies_ns == b.latencies_ns
        assert a.accounting() == b.accounting()

    def test_crash_repacks_and_accounts(self):
        trace = bursty_trace(6000, ArrivalProcess(4e6, seed=5))
        run = self.controller(
            config=SloConfig(epoch_packets=1024, rejoin_epochs=0),
            faults=FaultPlan(crash_core=1, crash_at=500),
        ).run(trace)
        assert len(run.failures) == 1
        failure = run.failures[0]
        assert failure.kind == "crash"
        assert failure.core == 1
        assert failure.repacked
        assert run.is_fully_accounted
        assert any("crash core=1" in e.events for e in run.timeline)

    def test_wedge_detected_mid_run(self):
        trace = bursty_trace(8000, ArrivalProcess(6e6, seed=5))
        run = self.controller(
            config=SloConfig(epoch_packets=1024, rejoin_epochs=0),
            faults=FaultPlan(wedge_core=2, wedge_at=300),
            detection=WedgeDetection(mean_packets=256, min_packets=64, seed=1),
        ).run(trace)
        assert len(run.failures) == 1
        assert run.failures[0].kind == "wedge"
        # Detection latency: the wedged core silently ate packets.
        assert run.failures[0].lost > 0
        assert run.lost == run.failures[0].lost
        assert run.is_fully_accounted

    def test_crashed_core_rejoins_cold(self):
        trace = bursty_trace(10_000, ArrivalProcess(5e6, seed=5))
        run = self.controller(
            initial_cores=2,
            config=SloConfig(
                target_p99_us=40.0, epoch_packets=512, rejoin_epochs=2
            ),
            faults=FaultPlan(crash_core=1, crash_at=400),
            warmup=ColdStartWarmup(),
        ).run(trace)
        joined = [
            e for ep in run.timeline for e in ep.events
            if e.startswith("scale-up core=1") or e.startswith("rejoin core=1")
        ]
        assert joined, "crashed core never came back"
        assert run.is_fully_accounted

    def test_autoscaler_recovers_where_fixed_fleet_cannot(self):
        # The acceptance scenario: a crash leaves the remaining fleet
        # under-provisioned for the offered load.  With autoscaling the
        # parked cores absorb it and p99 returns under target; without
        # (and with the dead core gone for good) it never does.
        trace = bursty_trace(14_000, ArrivalProcess(9e6, seed=5))

        def run(autoscale):
            return SloController(
                countmin_factory,
                max_cores=4,
                initial_cores=2,
                queueing=QueueingConfig(),
                config=SloConfig(
                    target_p99_us=60.0,
                    epoch_packets=512,
                    autoscale=autoscale,
                    rejoin_epochs=0,
                ),
                faults=FaultPlan(crash_core=1, crash_at=1500),
            ).run(trace)

        scaled, fixed = run(True), run(False)
        assert scaled.violating_epochs(), "crash never breached the SLO"
        assert scaled.recovery_s() is not None
        assert fixed.recovery_s() is None
        assert scaled.latency_summary()["p99_us"] < fixed.latency_summary()["p99_us"]
        assert scaled.is_fully_accounted and fixed.is_fully_accounted

    def test_scale_down_when_overprovisioned(self):
        trace = bursty_trace(8000, ArrivalProcess(1e6, seed=5))
        run = self.controller(
            config=SloConfig(
                target_p99_us=500.0, epoch_packets=1024, cooldown_epochs=0
            )
        ).run(trace)
        assert any(
            e.startswith("scale-down") for ep in run.timeline for e in ep.events
        )
        assert run.is_fully_accounted

    def test_validation(self):
        with pytest.raises(ValueError):
            self.controller(max_cores=0)
        with pytest.raises(ValueError):
            self.controller(initial_cores=9)
        with pytest.raises(ValueError):
            self.controller(config=SloConfig(min_cores=8))
        with pytest.raises(ValueError, match="nonexistent core"):
            self.controller(faults=FaultPlan(crash_core=7))
