"""Smoke tests: every example script runs end-to-end and prints the
claims it makes."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": ["eNetSTL over eBPF", "Mpps"],
    "multicore_scaling.py": ["aggregate Mpps", "imbalance", "merged 8-core estimate"],
    "heavy_hitter_telemetry.py": ["recall", "NitroSketch"],
    "packet_scheduler.py": ["Carousel", "voice"],
    "skiplist_kv_walkthrough.py": ["dangling", "gap to the kernel"],
    "verifier_demo.py": [
        "ACCEPTED", "REJECTED", "mem-check elided", "back-edge",
        "division by zero",
    ],
    "service_chain.py": ["infeasible", "saturated", "cache hit rate"],
    "slo_recovery.py": [
        "crash core=1", "scale-up", "sustained compliance",
        "never returned under target",
    ],
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    for fragment in CASES[script]:
        assert fragment in result.stdout, (
            f"{script} output missing {fragment!r}:\n{result.stdout}"
        )


def test_all_examples_have_smoke_cases():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(CASES)
