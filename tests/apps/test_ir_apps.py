"""Verified-IR app ports: strict verification, 3-backend parity,
control-plane failover, and multi-core runs (PR 10 tentpole).

The contract under test, per app: every stage verifies (strict — any
rejection is a failure), and the interpreted, per-NF-JIT, and fused
builds produce bit-identical verdict sequences, VM statistics, and
cycle ledgers over the same trace with same-seed registries.  Katran
additionally pins the control plane: failing a backend repacks the CH
ring in place — visible to already-fused closures — with Maglev-grade
disruption and connection eviction.
"""

import pytest

from repro.apps.ir import (
    CH_RING_SIZE,
    IR_APP_NAMES,
    KATRAN_REALS,
    app_chain,
    app_nf,
    app_nf_factory,
    ir_registry,
    verify_app_chains,
)
from repro.datastructs.cuckoo import BlockedCuckooTable
from repro.net.flowgen import FlowGenerator
from repro.net.multicore import RssDispatcher

SEED = 1009
BACKENDS = ("interp", "jit", "fused")


def _trace(n=1200, n_flows=192, seed=SEED):
    return FlowGenerator(
        n_flows=n_flows, distribution="zipf", zipf_s=1.1, seed=seed
    ).trace(n)


def _static_fdb(registry, trace):
    """Install static FDB entries (control-plane seeded, like a bridge
    with pre-provisioned stations) for half the destinations so the
    forward stage exercises both REDIRECT and flood paths."""
    fdb = registry.app_state.fdb
    for i, pkt in enumerate(trace):
        if i % 2 == 0:
            mac = pkt.dst_ip | (pkt.dst_port << 32)
            fdb[mac] = pkt.dst_port % 8


def _run(app, backend, trace, seed=3):
    registry = ir_registry(seed)
    if app == "polycube":
        _static_fdb(registry, trace)
    nf = app_nf(app, backend=backend, seed=seed, registry=registry)
    for pkt in trace:
        nf.process(pkt)
    return nf


def _witness(nf):
    return (
        tuple(nf.returns),
        nf.rt.cycles.total,
        nf.rt.cycles.breakdown(),
        nf.stats.insn_cycles,
        nf.stats.check_cycles,
        nf.stats.steps,
    )


# -- verification -----------------------------------------------------------


def test_all_stages_verify_strict():
    states = verify_app_chains(strict=True)  # raises on any rejection
    assert len(states) == 8
    assert all(n > 0 for n in states.values())


def test_unknown_app_rejected():
    with pytest.raises(ValueError):
        app_chain("netfilter")


def test_chains_are_two_stage_pipelines():
    for name in IR_APP_NAMES:
        chain = app_chain(name)
        assert len(chain) == 2


# -- backend parity ---------------------------------------------------------


@pytest.mark.parametrize("app", IR_APP_NAMES)
def test_three_backend_parity(app):
    trace = _trace()
    witnesses = {b: _witness(_run(app, b, trace)) for b in BACKENDS}
    assert witnesses["interp"] == witnesses["jit"] == witnesses["fused"]


def test_verdict_mix_is_nontrivial():
    trace = _trace(n=2400)
    mixes = {}
    for app in IR_APP_NAMES:
        nf = _run(app, "fused", trace)
        mixes[app] = set(nf.returns)
    assert mixes["katran"] == {3, 4}          # TX / REDIRECT by real
    assert mixes["rakelimit"] == {1, 2}       # zipf head gets limited
    assert mixes["polycube"] == {2, 4}        # flood + known-MAC redirect
    assert mixes["sketches"] == {1, 2}        # heavy hitters policed


def test_fusion_inlines_app_kfuncs():
    for app in IR_APP_NAMES:
        nf = app_nf(app, backend="fused", seed=1)
        assert nf._fused.inlined_kfuncs >= 1, app


# -- katran control plane ---------------------------------------------------


def test_katran_failover_repacks_in_place():
    trace = _trace(n=1500)
    registry = ir_registry(5)
    nf = app_nf("katran", backend="fused", seed=5, registry=registry)
    for pkt in trace:
        nf.process(pkt)
    kat = registry.app_state.katran
    assert len(kat.conns) > 0
    victim = kat.ring[0]
    pinned_before = sum(1 for _, real in kat.conns.items() if real == victim)
    report = kat.fail_real(victim)
    assert report["evicted"] == pinned_before > 0
    assert victim not in kat.ring
    assert victim not in kat.alive
    # Maglev minimal disruption: slots not owned by the victim mostly
    # keep their backend (well under half move on a repack).
    assert report["moved"] / CH_RING_SIZE < 0.5
    # The fused closure sees the repack immediately: replay the trace
    # and confirm no flow lands on the failed real.
    for pkt in trace:
        nf.process(pkt)
    assert all(real != victim for _, real in kat.conns.items())
    assert set(nf.returns) <= {3, 4}


def test_katran_failover_parity_across_backends():
    trace = _trace(n=900, seed=77)
    phase1, phase2 = trace[:450], trace[450:]
    witnesses = {}
    for backend in BACKENDS:
        registry = ir_registry(9)
        nf = app_nf("katran", backend=backend, seed=9, registry=registry)
        for pkt in phase1:
            nf.process(pkt)
        kat = registry.app_state.katran
        report = kat.fail_real(kat.ring[0])
        for pkt in phase2:
            nf.process(pkt)
        witnesses[backend] = (_witness(nf), tuple(sorted(report.items())))
    assert witnesses["interp"] == witnesses["jit"] == witnesses["fused"]


def test_fail_last_real_rejected():
    registry = ir_registry(0, n_reals=2)
    kat = registry.app_state.katran
    kat.fail_real(0)
    with pytest.raises(ValueError):
        kat.fail_real(1)


# -- multi-core -------------------------------------------------------------


@pytest.mark.parametrize("app", IR_APP_NAMES)
def test_multicore_jit_fused_parity(app):
    trace = _trace(n=1600, seed=41)
    results = {}
    for backend in ("jit", "fused"):
        disp = RssDispatcher(
            app_nf_factory(app, backend=backend, registry_seed=2),
            n_cores=4,
            steering="ntuple",
        )
        res = disp.run(trace)
        assert res.is_fully_accounted
        results[backend] = (
            dict(res.actions),
            res.total_cycles,
            res.packets_in,
        )
    assert results["jit"] == results["fused"]


def test_multicore_per_core_state_is_private():
    disp = RssDispatcher(
        app_nf_factory("katran", backend="fused", registry_seed=0),
        n_cores=2,
        steering="ntuple",
    )
    disp.run(_trace(n=400))
    states = [nf.registry.app_state for nf in disp.nfs]
    assert states[0] is not states[1]
    assert states[0].katran.conns is not states[1].katran.conns


# -- cuckoo control-plane snapshot -----------------------------------------


def test_cuckoo_items_snapshot():
    table = BlockedCuckooTable(64, 4, seed=3)
    pairs = {k: k * 7 for k in range(40)}
    for k, v in pairs.items():
        assert table.insert(k, v)
    assert dict(table.items()) == pairs
    table.delete(5)
    assert 5 not in dict(table.items())


def test_ring_covers_all_reals():
    registry = ir_registry(0)
    kat = registry.app_state.katran
    assert set(kat.ring) == set(range(KATRAN_REALS))
