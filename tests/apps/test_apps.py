"""Tests for the Fig. 7 application integrations.

The key invariant: the integrated build must make the *same forwarding
decisions* as the origin build — only its cycle costs change.
"""

import pytest

from repro.apps import ALL_APPS, KatranApp, PolycubeBridgeApp, RakeLimitApp, SketchSuiteApp
from repro.net.flowgen import FlowGenerator
from repro.net.xdp import XdpPipeline


def run_both(app_cls, n_packets=600, seed=3, **kwargs):
    fg = FlowGenerator(n_flows=256, seed=seed, distribution="zipf")
    trace = fg.trace(n_packets)
    results = {}
    apps = {}
    for integrated in (False, True):
        app = app_cls(integrated=integrated, seed=seed, **kwargs)
        results[integrated] = XdpPipeline(app).run(trace)
        apps[integrated] = app
    return apps, results


class TestKatran:
    def test_same_forwarding_decisions(self):
        apps, results = run_both(KatranApp)
        assert results[False].actions == results[True].actions
        assert apps[False].forwarded == apps[True].forwarded
        assert apps[False].new_flows == apps[True].new_flows

    def test_integration_improves_throughput(self):
        _, results = run_both(KatranApp)
        imp = results[True].pps / results[False].pps - 1
        assert 0.05 < imp < 0.40

    def test_flows_learned_once(self):
        apps, _ = run_both(KatranApp)
        for app in apps.values():
            assert app.new_flows <= 256


class TestRakeLimit:
    def test_same_sketch_contents(self):
        apps, _ = run_both(RakeLimitApp)
        assert apps[False].sketches == apps[True].sketches

    def test_same_verdicts(self):
        apps, results = run_both(RakeLimitApp, drop_threshold=50)
        assert results[False].actions == results[True].actions
        assert apps[False].dropped == apps[True].dropped

    def test_heavy_flows_get_dropped(self):
        apps, _ = run_both(RakeLimitApp, n_packets=2000, drop_threshold=60)
        assert apps[True].dropped > 0

    def test_integration_improves_throughput(self):
        _, results = run_both(RakeLimitApp)
        imp = results[True].pps / results[False].pps - 1
        assert 0.10 < imp < 0.45


class TestPolycube:
    def test_same_forwarding_decisions(self):
        apps, results = run_both(PolycubeBridgeApp)
        assert results[False].actions == results[True].actions
        assert apps[False].forwarded == apps[True].forwarded
        assert apps[False].flooded == apps[True].flooded

    def test_learned_macs_forwarded_not_flooded(self):
        apps, _ = run_both(PolycubeBridgeApp, n_packets=1500)
        # After warmup, most destinations have been learned as sources?
        # Our traffic derives dst MACs from different fields, so only
        # check the counters are consistent.
        app = apps[True]
        assert app.forwarded + app.flooded == 1500

    def test_integration_improves_throughput(self):
        _, results = run_both(PolycubeBridgeApp)
        imp = results[True].pps / results[False].pps - 1
        assert 0.08 < imp < 0.40


class TestSketchSuite:
    def test_same_cm_estimates(self):
        apps, _ = run_both(SketchSuiteApp)
        a, b = apps[False], apps[True]
        assert a.rows == b.rows          # same deterministic updates
        assert a.heap.topk() == b.heap.topk()

    def test_integration_improves_throughput(self):
        _, results = run_both(SketchSuiteApp)
        imp = results[True].pps / results[False].pps - 1
        assert 0.15 < imp < 0.50

    def test_univ_layer_sampled(self):
        apps, _ = run_both(SketchSuiteApp, n_packets=2000)
        for app in apps.values():
            sampled = sum(sum(row) for row in app.univ_rows)
            # ~25% sampling of 2000 packets, 2 rows each.
            assert 400 < sampled < 1600


class TestAllApps:
    @pytest.mark.parametrize("name", sorted(ALL_APPS))
    def test_modes_match_integration_flag(self, name):
        app = ALL_APPS[name](integrated=True)
        assert app.rt.mode.value == "enetstl"
        assert app.label == "eNetSTL"
        app = ALL_APPS[name](integrated=False)
        assert app.rt.mode.value == "ebpf"
        assert app.label == "Origin"

    def test_average_improvement_in_paper_band(self):
        """Fig. 7: +21.6% average in the paper; we assert 15-30%."""
        imps = []
        for name, cls in ALL_APPS.items():
            _, results = run_both(cls, n_packets=800)
            imps.append(results[True].pps / results[False].pps - 1)
        avg = sum(imps) / len(imps)
        assert 0.15 < avg < 0.30
