"""Tests for the HyperCuts decision-tree classifier."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.experiments import make_rules_for_flows
from repro.datastructs.hypercuts import (
    HyperCutsTree,
    rule_matches,
    rule_ranges,
)
from repro.datastructs.tss import MaskTuple, Rule, TupleSpaceClassifier
from repro.net.flowgen import FlowGenerator
from repro.net.packet import PROTO_TCP, Packet


def pkt(src=0x0A000001, dst=0x0A000002, sp=1234, dp=80, proto=PROTO_TCP):
    return Packet(src, dst, sp, dp, proto)


def rule_for(p, mask=None, priority=0, action="permit"):
    return Rule(
        mask=mask or MaskTuple(),
        src_ip=p.src_ip,
        dst_ip=p.dst_ip,
        src_port=p.src_port,
        dst_port=p.dst_port,
        proto=p.proto,
        priority=priority,
        action=action,
    )


class TestRuleGeometry:
    def test_exact_rule_is_a_point(self):
        ranges = rule_ranges(rule_for(pkt()))
        assert all(lo == hi for lo, hi in ranges)

    def test_prefix_rule_spans_block(self):
        mask = MaskTuple(src_prefix=24, dst_prefix=0,
                         src_port_care=False, dst_port_care=False,
                         proto_care=False)
        ranges = rule_ranges(rule_for(pkt(src=0x0A0000FF), mask))
        assert ranges[0] == (0x0A000000, 0x0A0000FF)
        assert ranges[1] == (0, 0xFFFFFFFF)
        assert ranges[2] == (0, 0xFFFF)

    def test_rule_matches_agrees_with_mask(self):
        mask = MaskTuple(src_prefix=16, dst_prefix=32,
                         src_port_care=False, dst_port_care=True,
                         proto_care=True)
        rule = rule_for(pkt(), mask)
        assert rule_matches(rule, pkt(src=0x0A00FFFF, sp=9))
        assert not rule_matches(rule, pkt(dst=0x0A000003))


class TestTree:
    def _rules(self, n=256, seed=13):
        flows = FlowGenerator(n, seed=seed).flows
        return make_rules_for_flows(flows)

    def test_matches_tss_reference(self):
        rules = self._rules(256)
        tree = HyperCutsTree(rules)
        tss = TupleSpaceClassifier()
        for r in rules:
            tss.add_rule(r)
        probes = FlowGenerator(256, seed=13).trace(400)
        for p in probes:
            tree_hit, _, _ = tree.classify(p)
            tss_hit = tss.classify(p)
            assert (tree_hit is None) == (tss_hit is None)
            if tree_hit is not None:
                # Same priority match (ties may differ in identity).
                assert tree_hit.priority == tss_hit.priority

    def test_leaf_size_bounded_by_binth_or_depth(self):
        rules = self._rules(512)
        tree = HyperCutsTree(rules, binth=8, max_depth=12)

        def check(node):
            if node.is_leaf:
                return len(node.rules)
            return max(check(c) for c in node.children)

        # Leaves may exceed binth only when identical rules can't split.
        assert check(tree.root) <= 64

    def test_classification_cost_is_logarithmic(self):
        rules = self._rules(512)
        tree = HyperCutsTree(rules)
        _, visited, compared = tree.classify(pkt())
        assert visited <= tree.depth
        assert compared <= 64

    def test_unmatched_packet_returns_none(self):
        tree = HyperCutsTree(self._rules(64))
        rule, _, _ = tree.classify(pkt(src=0xDEAD0000, dst=0xBEEF0000,
                                       sp=1, dp=2, proto=99))
        assert rule is None

    def test_priority_order_within_leaf(self):
        base = pkt()
        wild = MaskTuple(src_prefix=0, dst_prefix=0, src_port_care=False,
                         dst_port_care=False, proto_care=False)
        rules = [
            rule_for(base, wild, priority=1, action="permit"),
            rule_for(base, priority=9, action="deny"),
        ]
        tree = HyperCutsTree(rules)
        hit, _, _ = tree.classify(base)
        assert hit.action == "deny"

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HyperCutsTree([], binth=0)
        with pytest.raises(ValueError):
            HyperCutsTree([], n_cuts=1)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1),
           st.integers(0, 0xFFFF), st.integers(0, 0xFFFF),
           st.integers(0, 0xFF))
    @settings(max_examples=60, deadline=None)
    def test_tree_never_misses_a_matching_rule(self, src, dst, sp, dp, proto):
        rules = self._rules(128)
        tree = HyperCutsTree(rules)
        probe = Packet(src, dst, sp, dp, proto)
        brute = max(
            (r for r in rules if rule_matches(r, probe)),
            key=lambda r: r.priority,
            default=None,
        )
        hit, _, _ = tree.classify(probe)
        assert (hit is None) == (brute is None)
        if hit is not None:
            assert hit.priority == brute.priority
