"""Tests for the TSS classifier and the EFD table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastructs.efd import EfdTable
from repro.datastructs.tss import MaskTuple, Rule, TupleSpaceClassifier
from repro.net.packet import PROTO_TCP, PROTO_UDP, Packet


def pkt(src=0x0A000001, dst=0x0A000002, sp=1234, dp=80, proto=PROTO_TCP):
    return Packet(src, dst, sp, dp, proto)


def rule_for(p, mask, priority=0, action="permit"):
    return Rule(
        mask=mask,
        src_ip=p.src_ip,
        dst_ip=p.dst_ip,
        src_port=p.src_port,
        dst_port=p.dst_port,
        proto=p.proto,
        priority=priority,
        action=action,
    )


class TestMaskTuple:
    def test_exact_mask_identity(self):
        m = MaskTuple()
        p = pkt()
        assert m.mask_packet(p) == p.five_tuple

    def test_prefix_masking(self):
        m = MaskTuple(src_prefix=24, dst_prefix=0,
                      src_port_care=False, dst_port_care=True, proto_care=False)
        masked = m.mask_packet(pkt(src=0x0A0000FF))
        assert masked == (0x0A000000, 0, 0, 80, 0)

    def test_invalid_prefix(self):
        with pytest.raises(ValueError):
            MaskTuple(src_prefix=33)


class TestTupleSpaceClassifier:
    def test_exact_match(self):
        c = TupleSpaceClassifier()
        p = pkt()
        c.add_rule(rule_for(p, MaskTuple(), priority=5))
        hit = c.classify(p)
        assert hit is not None and hit.priority == 5
        assert c.classify(pkt(dp=81)) is None

    def test_wildcard_match(self):
        c = TupleSpaceClassifier()
        m = MaskTuple(src_prefix=24, dst_prefix=0,
                      src_port_care=False, dst_port_care=False, proto_care=False)
        c.add_rule(rule_for(pkt(src=0x0A000001), m))
        # Any packet in 10.0.0.0/24 matches.
        assert c.classify(pkt(src=0x0A0000FE, dp=9999, proto=PROTO_UDP))

    def test_highest_priority_wins(self):
        c = TupleSpaceClassifier()
        p = pkt()
        wild = MaskTuple(src_prefix=0, dst_prefix=0, src_port_care=False,
                         dst_port_care=False, proto_care=False)
        c.add_rule(rule_for(p, wild, priority=1, action="permit"))
        c.add_rule(rule_for(p, MaskTuple(), priority=9, action="deny"))
        assert c.classify(p).action == "deny"

    def test_tuple_count(self):
        c = TupleSpaceClassifier()
        p = pkt()
        c.add_rule(rule_for(p, MaskTuple()))
        c.add_rule(rule_for(p, MaskTuple(src_prefix=24)))
        c.add_rule(rule_for(pkt(dp=443), MaskTuple()))   # same mask
        assert c.n_tuples == 2
        assert c.n_rules == 3

    def test_remove_rule(self):
        c = TupleSpaceClassifier()
        p = pkt()
        r = rule_for(p, MaskTuple())
        c.add_rule(r)
        assert c.remove_rule(r)
        assert c.classify(p) is None
        assert not c.remove_rule(r)
        assert c.n_tuples == 0

    def test_same_key_keeps_higher_priority(self):
        c = TupleSpaceClassifier()
        p = pkt()
        c.add_rule(rule_for(p, MaskTuple(), priority=3))
        c.add_rule(rule_for(p, MaskTuple(), priority=1))
        assert c.classify(p).priority == 3


class TestEfdTable:
    def test_insert_then_lookup_returns_target(self):
        t = EfdTable(64, 4)
        assert t.insert(42, 3)
        assert t.lookup(42) == 3

    def test_many_flows(self):
        t = EfdTable(256, 4)
        bindings = {k * 31 + 7: k % 4 for k in range(400)}
        for key, target in bindings.items():
            assert t.insert(key, target), key
        for key, target in bindings.items():
            assert t.lookup(key) == target

    def test_group_reseeding_preserves_members(self):
        """Inserting into a group re-searches its seed; existing members
        must keep their targets."""
        t = EfdTable(2, 2, seed_search_bound=1 << 20)
        keys = list(range(12))
        targets = {}
        for k in keys:
            if t.insert(k, k % 2):
                targets[k] = k % 2
        for k, target in targets.items():
            assert t.lookup(k) == target

    def test_unknown_key_still_returns_some_target(self):
        t = EfdTable(64, 4)
        t.insert(1, 2)
        assert 0 <= t.lookup(999_999) < 4

    def test_delete(self):
        t = EfdTable(64, 4)
        t.insert(5, 1)
        assert t.delete(5)
        assert not t.delete(5)

    def test_saturated_group_fails_cleanly(self):
        t = EfdTable(1, 256, seed_search_bound=4)   # near-impossible search
        results = [t.insert(k, (k * 7) % 256) for k in range(6)]
        assert not all(results)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EfdTable(100, 4)      # not power of two
        with pytest.raises(ValueError):
            EfdTable(64, 1)
        t = EfdTable(64, 4)
        with pytest.raises(ValueError):
            t.insert(1, 4)

    @given(st.dictionaries(st.integers(0, 5000), st.integers(0, 3), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_lookup_is_consistent_property(self, bindings):
        t = EfdTable(128, 4)
        placed = {}
        for key, target in bindings.items():
            if t.insert(key, target):
                placed[key] = target
        for key, target in placed.items():
            assert t.lookup(key) == target
