"""Tests for count-min, HeavyKeeper, and the top-k heap."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastructs.countmin import CountMinSketch
from repro.datastructs.heap import TopKHeap
from repro.datastructs.heavykeeper import HeavyKeeper


class TestCountMin:
    def test_never_underestimates(self):
        cm = CountMinSketch(4, 512)
        truth = {}
        for k in range(200):
            for _ in range(k % 7 + 1):
                cm.update(k)
                truth[k] = truth.get(k, 0) + 1
        for k, count in truth.items():
            assert cm.estimate(k) >= count

    def test_exact_when_sparse(self):
        cm = CountMinSketch(4, 4096)
        cm.update(1, 5)
        cm.update(2, 3)
        assert cm.estimate(1) == 5
        assert cm.estimate(2) == 3

    def test_merge(self):
        a, b = CountMinSketch(4, 256), CountMinSketch(4, 256)
        a.update(7, 2)
        b.update(7, 3)
        a.merge(b)
        assert a.estimate(7) == 5
        assert a.total == 5

    def test_merge_dimension_mismatch(self):
        with pytest.raises(ValueError):
            CountMinSketch(4, 256).merge(CountMinSketch(2, 256))

    def test_error_bound_scales_with_total(self):
        cm = CountMinSketch(4, 1024)
        for k in range(1000):
            cm.update(k)
        assert cm.error_bound() == pytest.approx(2.718281828 / 1024 * 1000)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            CountMinSketch(0, 10)
        with pytest.raises(ValueError):
            CountMinSketch(4, 0)

    @given(st.dictionaries(st.integers(0, 100), st.integers(1, 20), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_overestimate_property(self, truth):
        cm = CountMinSketch(4, 2048)
        for key, count in truth.items():
            cm.update(key, count)
        for key, count in truth.items():
            estimate = cm.estimate(key)
            assert estimate >= count
            assert estimate <= count + cm.total   # trivially bounded


class TestTopKHeap:
    def test_tracks_topk(self):
        h = TopKHeap(3)
        for key, count in [(1, 10), (2, 5), (3, 8), (4, 20), (5, 1)]:
            h.offer(key, count)
        top = h.topk()
        assert [k for _, k in top] == [4, 1, 3]

    def test_min_rejected_when_full(self):
        h = TopKHeap(2)
        h.offer(1, 10)
        h.offer(2, 20)
        assert not h.offer(3, 5)
        assert 3 not in h

    def test_eviction(self):
        h = TopKHeap(2)
        h.offer(1, 10)
        h.offer(2, 20)
        assert h.offer(3, 15)
        assert 1 not in h and 3 in h

    def test_increment(self):
        h = TopKHeap(4)
        h.offer(1, 5)
        assert h.increment(1, 3)
        assert h.count_of(1) == 8
        assert not h.increment(99)

    def test_offer_existing_key_raises_count(self):
        h = TopKHeap(4)
        h.offer(1, 5)
        h.offer(1, 9)
        assert h.count_of(1) == 9
        h.offer(1, 2)              # lower counts never shrink the entry
        assert h.count_of(1) == 9

    def test_min(self):
        h = TopKHeap(4)
        assert h.min() is None
        h.offer(1, 5)
        h.offer(2, 3)
        assert h.min() == (3, 2)

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 100)),
                    max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_heap_invariant_and_membership(self, offers):
        h = TopKHeap(8)
        best = {}
        for key, count in offers:
            h.offer(key, count)
            best[key] = max(best.get(key, 0), count)
        # Heap property: parent <= children.
        heap = h._heap
        for i in range(1, len(heap)):
            assert heap[(i - 1) // 2][0] <= heap[i][0]
        # Every tracked key reports its best offered count.
        for count, key in heap:
            assert count == best[key]


class TestHeavyKeeper:
    def test_detects_elephants(self):
        hk = HeavyKeeper(depth=2, width=1024, k=8, seed=5)
        # 4 elephants, 200 mice.
        for _ in range(300):
            for elephant in (1, 2, 3, 4):
                hk.update(elephant)
        for mouse in range(100, 300):
            hk.update(mouse)
        top_keys = {k for _, k in hk.topk()[:4]}
        assert top_keys == {1, 2, 3, 4}

    def test_estimate_close_for_heavy_flows(self):
        hk = HeavyKeeper(depth=2, width=2048, seed=5)
        for _ in range(500):
            hk.update(42)
        assert hk.estimate(42) >= 400   # decay may shave a little

    def test_mice_stay_small(self):
        hk = HeavyKeeper(depth=2, width=2048, seed=5)
        for _ in range(1000):
            hk.update(1)
        hk.update(9999)
        assert hk.estimate(9999) <= 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HeavyKeeper(depth=0)
        with pytest.raises(ValueError):
            HeavyKeeper(decay_base=1.0)

    def test_injected_randomness_used(self):
        calls = []

        def rigged():
            calls.append(1)
            return 0.0   # always decay

        hk = HeavyKeeper(depth=1, width=1, rand=rigged)  # force collisions
        hk.update(1)
        hk.update(2)   # collides with 1's bucket -> decay test
        assert calls
