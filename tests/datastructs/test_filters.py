"""Tests for the membership structures: cuckoo filter, Bloom, vBF."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastructs.bloom import BloomFilter, VectorBloomFilter
from repro.datastructs.cuckoo_filter import CuckooFilter


class TestCuckooFilter:
    def test_insert_contains(self):
        cf = CuckooFilter(256)
        assert cf.insert(42)
        assert cf.contains(42)

    def test_no_false_negatives(self):
        cf = CuckooFilter(1024)
        keys = [k * 2654435761 + 7 for k in range(2000)]
        inserted = [k for k in keys if cf.insert(k)]
        assert len(inserted) == len(keys)
        assert all(cf.contains(k) for k in inserted)

    def test_false_positive_rate_bounded(self):
        cf = CuckooFilter(4096, fingerprint_bits=16)
        for k in range(8000):
            cf.insert(k)
        absent = range(1_000_000, 1_020_000)
        fps = sum(1 for k in absent if cf.contains(k))
        assert fps / 20_000 < 0.01   # 16-bit fingerprints: well under 1%

    def test_delete(self):
        cf = CuckooFilter(256)
        cf.insert(7)
        assert cf.delete(7)
        assert not cf.contains(7)
        assert not cf.delete(7)

    def test_load_factor(self):
        cf = CuckooFilter(64, 4)
        for k in range(128):
            cf.insert(k)
        assert cf.load_factor == pytest.approx(0.5)

    def test_partial_key_relocation_consistent(self):
        """alt_index(alt_index(i, fp), fp) == i — the xor trick."""
        cf = CuckooFilter(1024)
        for key in range(500):
            fp = cf.fingerprint(key)
            i1 = cf.index1(key)
            i2 = cf.alt_index(i1, fp)
            assert cf.alt_index(i2, fp) == i1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CuckooFilter(100)            # not a power of two
        with pytest.raises(ValueError):
            CuckooFilter(64, fingerprint_bits=2)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(1 << 14, 4)
        keys = list(range(0, 3000, 3))
        for k in keys:
            bf.add(k)
        assert all(k in bf for k in keys)

    def test_false_positive_rate_reasonable(self):
        bf = BloomFilter(1 << 15, 4)
        for k in range(2000):
            bf.add(k)
        fps = sum(1 for k in range(100_000, 120_000) if k in bf)
        assert fps / 20_000 < 0.05

    def test_expected_fpr_tracks_fill(self):
        bf = BloomFilter(1 << 12, 4)
        assert bf.expected_fpr() == 0.0
        for k in range(500):
            bf.add(k)
        assert 0.0 < bf.expected_fpr() < 1.0

    def test_bit_size_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(100, 4)   # not a multiple of 64
        with pytest.raises(ValueError):
            BloomFilter(64, 0)


class TestVectorBloomFilter:
    def test_set_membership(self):
        vbf = VectorBloomFilter(n_sets=8)
        vbf.add(100, set_id=3)
        assert vbf.lookup(100) == 3
        assert vbf.query(100) & (1 << 3)

    def test_absent_key_mostly_empty_mask(self):
        vbf = VectorBloomFilter(n_sets=8, n_bits=1 << 14)
        for k in range(500):
            vbf.add(k, k % 8)
        misses = sum(1 for k in range(50_000, 52_000) if vbf.lookup(k) is None)
        assert misses / 2000 > 0.9

    def test_no_false_negatives_per_set(self):
        vbf = VectorBloomFilter(n_sets=4, n_bits=1 << 14)
        assignments = {k: k % 4 for k in range(1000)}
        for k, s in assignments.items():
            vbf.add(k, s)
        for k, s in assignments.items():
            assert vbf.query(k) & (1 << s)

    def test_invalid_set_id(self):
        vbf = VectorBloomFilter(n_sets=4)
        with pytest.raises(ValueError):
            vbf.add(1, 4)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            VectorBloomFilter(n_sets=0)
        with pytest.raises(ValueError):
            VectorBloomFilter(n_sets=65)

    @given(st.sets(st.integers(0, 10_000), max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_added_keys_always_found(self, keys):
        vbf = VectorBloomFilter(n_sets=8, n_bits=1 << 12)
        for k in keys:
            vbf.add(k, k % 8)
        for k in keys:
            assert vbf.query(k) & (1 << (k % 8))
