"""Tests for the skip list and the blocked cuckoo hash table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastructs.cuckoo import BlockedCuckooTable
from repro.datastructs.skiplist import SkipList


class TestSkipList:
    def test_insert_lookup(self):
        sl = SkipList()
        assert sl.insert(5, "five")
        assert sl.lookup(5) == "five"
        assert sl.lookup(6) is None

    def test_insert_updates_existing(self):
        sl = SkipList()
        sl.insert(5, "a")
        assert not sl.insert(5, "b")   # not a new key
        assert sl.lookup(5) == "b"
        assert len(sl) == 1

    def test_delete(self):
        sl = SkipList()
        sl.insert(1, "x")
        assert sl.delete(1)
        assert not sl.delete(1)
        assert sl.lookup(1) is None
        assert len(sl) == 0

    def test_items_sorted(self):
        sl = SkipList()
        for k in (5, 1, 9, 3, 7):
            sl.insert(k, k * 10)
        assert list(sl.items()) == [(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]

    def test_contains(self):
        sl = SkipList()
        sl.insert(2, "y")
        assert 2 in sl and 3 not in sl

    def test_large_population(self):
        sl = SkipList(seed=3)
        for k in range(2000):
            sl.insert(k, k)
        assert len(sl) == 2000
        assert all(sl.lookup(k) == k for k in range(0, 2000, 97))

    def test_invalid_height(self):
        with pytest.raises(ValueError):
            SkipList(max_height=0)

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 50)), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_reference(self, ops):
        sl = SkipList(seed=11)
        ref = {}
        for is_insert, key in ops:
            if is_insert:
                sl.insert(key, key * 2)
                ref[key] = key * 2
            else:
                assert sl.delete(key) == (key in ref)
                ref.pop(key, None)
        assert dict(sl.items()) == ref
        assert len(sl) == len(ref)


class TestBlockedCuckooTable:
    def test_insert_lookup_delete(self):
        t = BlockedCuckooTable(64, 8)
        assert t.insert(42, "v")
        assert t.lookup(42) == "v"
        assert t.delete(42)
        assert t.lookup(42) is None
        assert not t.delete(42)

    def test_update_in_place(self):
        t = BlockedCuckooTable(64, 8)
        t.insert(1, "a")
        t.insert(1, "b")
        assert t.lookup(1) == "b"
        assert len(t) == 1

    def test_high_load_factor_achievable(self):
        t = BlockedCuckooTable(256, 8)
        placed = sum(1 for k in range(int(t.capacity * 0.95)) if t.insert(k, k))
        assert placed >= int(t.capacity * 0.93)
        assert t.load_factor >= 0.9

    def test_all_inserted_found(self):
        t = BlockedCuckooTable(256, 8)
        keys = [k * 7919 + 13 for k in range(1500)]
        for k in keys:
            assert t.insert(k, k)
        assert all(t.lookup(k) == k for k in keys)

    def test_kicks_relocate_entries(self):
        t = BlockedCuckooTable(4, 2, seed=7)   # tiny: forces kicks
        inserted = [k for k in range(8) if t.insert(k, k)]
        assert all(t.lookup(k) == k for k in inserted)

    def test_insert_fails_when_saturated(self):
        t = BlockedCuckooTable(2, 1, seed=7)
        results = [t.insert(k, k) for k in range(10)]
        assert not all(results)   # a 2-slot table cannot hold 10 keys

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BlockedCuckooTable(100, 8)

    def test_bucket_signatures_shape(self):
        t = BlockedCuckooTable(64, 8)
        t.insert(5, "v")
        index = t.index1(5) if t.probe_bucket(t.index1(5), 5) else t.index2(5)
        sigs = t.bucket_signatures(index)
        assert len(sigs) == 8
        assert t.signature(5) in sigs

    def test_avg_occupancy(self):
        t = BlockedCuckooTable(64, 8)
        for k in range(128):
            t.insert(k, k)
        assert t.avg_occupancy() == pytest.approx(2.0)

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 200)), max_size=250))
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_reference(self, ops):
        t = BlockedCuckooTable(128, 8)
        ref = {}
        for is_insert, key in ops:
            if is_insert:
                if t.insert(key, key):
                    ref[key] = key
            else:
                assert t.delete(key) == (key in ref)
                ref.pop(key, None)
        for key in ref:
            assert t.lookup(key) == ref[key]
        assert len(t) == len(ref)
