"""Tests for ElasticSketch (the Maglev table has its own NF test file)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastructs.elastic import ElasticSketch


class TestElasticSketch:
    def test_single_flow_counts_exactly(self):
        es = ElasticSketch(heavy_buckets=64, light_width=256)
        for _ in range(100):
            es.update(42)
        assert es.estimate(42) == 100

    def test_elephant_survives_mouse_collisions(self):
        es = ElasticSketch(heavy_buckets=1, light_width=256, lam=8)
        for _ in range(100):
            es.update(1)          # the elephant owns the only bucket
        for mouse in range(2, 10):
            es.update(mouse)      # 8 single-packet mice
        # 8 negatives < 8 * 100 positives: the elephant stays resident.
        assert es.estimate(1) == 100
        assert es.heavy_flows() == [(1, 100)]

    def test_eviction_when_votes_exceed_threshold(self):
        es = ElasticSketch(heavy_buckets=1, light_width=256, lam=2)
        es.update(1)              # resident with positive=1
        es.update(2)              # negative=1 < 2
        result = es.update(2)     # negative=2 >= 2*1: eviction
        assert result == "evict"
        # The old resident's count moved to the light part.
        assert es.estimate(1) >= 1
        # The new resident is in the heavy part.
        assert any(key == 2 for key, _ in es.heavy_flows())

    def test_estimates_never_underestimate(self):
        es = ElasticSketch(heavy_buckets=16, light_width=1024)
        truth = {}
        for i in range(3000):
            key = i % 50
            es.update(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert es.estimate(key) >= count * 0.9   # light-part sharing
            # In fact Elastic never undercounts a key's own packets:
            # heavy counts are exact and light cells only aggregate.
            assert es.estimate(key) >= count - 0

    def test_paths_reported(self):
        es = ElasticSketch(heavy_buckets=4, light_width=64, lam=2)
        paths = {es.update(i % 11) for i in range(200)}
        assert "heavy" in paths
        assert "light" in paths or "evict" in paths

    def test_occupancy(self):
        es = ElasticSketch(heavy_buckets=64, light_width=256)
        assert es.heavy_occupancy == 0.0
        es.update(1)
        assert es.heavy_occupancy == pytest.approx(1 / 64)

    def test_validation(self):
        with pytest.raises(ValueError):
            ElasticSketch(heavy_buckets=0)
        with pytest.raises(ValueError):
            ElasticSketch(lam=0)

    @given(st.lists(st.integers(0, 40), min_size=1, max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_no_underestimates_property(self, stream):
        es = ElasticSketch(heavy_buckets=8, light_width=512, lam=4)
        truth = {}
        for key in stream:
            es.update(key)
            truth[key] = truth.get(key, 0) + 1
        assert es.total == len(stream)
        for key, count in truth.items():
            assert es.estimate(key) >= count
