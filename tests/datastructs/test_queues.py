"""Tests for the timing wheel and the cFFS priority queue."""

import heapq

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastructs.cffs import CFFSQueue, FANOUT
from repro.datastructs.timewheel import PlainBuckets, TimingWheel


class TestTimingWheel:
    def make(self, tick=100, l1=16, l2=8):
        return TimingWheel(tick_ns=tick, l1_slots=l1, l2_slots=l2)

    def test_due_items_drain_in_slot_order(self):
        tw = self.make()
        tw.add("late", 900)
        tw.add("early", 200)
        assert tw.advance_to(1000) == ["early", "late"]

    def test_not_yet_due_stays_queued(self):
        tw = self.make()
        tw.add("x", 500)
        assert tw.advance_to(400) == []
        assert len(tw) == 1
        assert tw.advance_to(500) == ["x"]

    def test_level2_cascade(self):
        tw = self.make(tick=100, l1=16, l2=8)
        # Beyond level 1's horizon (16*100 = 1600ns).
        tw.add("far", 3000)
        assert tw.advance_to(2900) == []
        assert tw.advance_to(3100) == ["far"]

    def test_past_timestamps_fire_immediately(self):
        tw = self.make()
        tw.advance_to(1000)
        tw.add("overdue", 10)     # already in the past
        assert tw.advance_to(1100) == ["overdue"]

    def test_far_future_item_not_lost(self):
        tw = self.make(tick=100, l1=16, l2=8)   # horizon = 12800
        tw.add("beyond", 1_000_000)             # far past the horizon
        assert tw.advance_to(30_000) == []      # not early
        assert len(tw) == 1                     # still queued (re-cascaded)
        assert tw.advance_to(1_000_000) == ["beyond"]

    def test_len_tracks_population(self):
        tw = self.make()
        for i in range(10):
            tw.add(i, 100 * i + 50)
        assert len(tw) == 10
        tw.advance_to(500)
        assert len(tw) < 10

    def test_fifo_within_slot(self):
        tw = self.make()
        tw.add("a", 250)
        tw.add("b", 250)
        assert tw.advance_to(300) == ["a", "b"]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TimingWheel(tick_ns=0)
        with pytest.raises(ValueError):
            TimingWheel(l1_slots=0)

    @given(st.lists(st.integers(0, 20_000), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_everything_fires_by_deadline(self, expires):
        tw = TimingWheel(tick_ns=100, l1_slots=32, l2_slots=16)
        for i, e in enumerate(expires):
            tw.add(i, e)
        horizon = tw.horizon_ns
        fired = tw.advance_to(max(expires) + horizon + 200)
        assert sorted(fired) == list(range(len(expires)))
        assert len(tw) == 0

    @given(st.lists(st.integers(0, 1500), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_nothing_fires_early_within_level1(self, expires):
        tw = TimingWheel(tick_ns=100, l1_slots=32, l2_slots=16)
        for i, e in enumerate(expires):
            tw.add((i, e), e)
        now = 700
        for _, e in tw.advance_to(now):
            # A slot covers [tick*k, tick*k+99]; firing is at slot
            # granularity, never more than one tick early.
            assert e < now + tw.tick_ns


class TestPlainBuckets:
    def test_insert_drain(self):
        pb = PlainBuckets(4)
        pb.insert_tail(1, "a")
        pb.insert_tail(1, "b")
        assert pb.bucket_len(1) == 2
        assert pb.drain(1) == ["a", "b"]
        assert len(pb) == 0

    def test_pop_front(self):
        pb = PlainBuckets(2)
        assert pb.pop_front(0) is None
        pb.insert_tail(0, 1)
        assert pb.pop_front(0) == 1


class TestCFFS:
    def test_dequeues_in_priority_order(self):
        q = CFFSQueue(levels=2)
        for prio in (300, 5, 77, 4095):
            q.enqueue(prio, f"p{prio}")
        out = [q.dequeue_min()[0] for _ in range(4)]
        assert out == [5, 77, 300, 4095]

    def test_fifo_within_priority(self):
        q = CFFSQueue(levels=1)
        q.enqueue(7, "first")
        q.enqueue(7, "second")
        assert q.dequeue_min() == (7, "first")
        assert q.dequeue_min() == (7, "second")

    def test_empty_returns_none(self):
        q = CFFSQueue(levels=1)
        assert q.dequeue_min() is None
        assert q.peek_min_priority() is None

    def test_priority_range_by_levels(self):
        assert CFFSQueue(levels=1).n_priorities == 64
        assert CFFSQueue(levels=3).n_priorities == 64 ** 3

    def test_out_of_range_priority(self):
        q = CFFSQueue(levels=1)
        with pytest.raises(ValueError):
            q.enqueue(64, "x")
        with pytest.raises(ValueError):
            q.enqueue(-1, "x")

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            CFFSQueue(levels=0)
        with pytest.raises(ValueError):
            CFFSQueue(levels=5)

    def test_bitmap_clears_when_empty(self):
        q = CFFSQueue(levels=2)
        q.enqueue(100, "x")
        q.dequeue_min()
        assert q._bitmaps[0][0] == 0
        assert len(q) == 0 and not q

    def test_interleaved_enqueue_dequeue(self):
        q = CFFSQueue(levels=2)
        q.enqueue(50, "a")
        q.enqueue(10, "b")
        assert q.dequeue_min() == (10, "b")
        q.enqueue(5, "c")
        assert q.dequeue_min() == (5, "c")
        assert q.dequeue_min() == (50, "a")

    @given(st.lists(st.integers(0, 64 ** 2 - 1), min_size=1, max_size=150))
    @settings(max_examples=60, deadline=None)
    def test_matches_heapq_reference(self, priorities):
        q = CFFSQueue(levels=2)
        ref = []
        for i, prio in enumerate(priorities):
            q.enqueue(prio, i)
            heapq.heappush(ref, (prio, i))
        while ref:
            expect_prio, _ = ref[0]
            got_prio, _ = q.dequeue_min()
            assert got_prio == expect_prio
            heapq.heappop(ref)
        assert q.dequeue_min() is None
