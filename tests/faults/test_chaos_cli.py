"""Tests for the chaos harness CLI (python -m repro.faults)."""

import json

import pytest

from repro.faults.__main__ import main
from repro.net.flowgen import FlowGenerator
from repro.net.trace import dump_trace

QUICK = ["--packets", "2000", "--cores", "4", "--flows", "128"]


@pytest.fixture()
def trace_csv(tmp_path):
    path = tmp_path / "trace.csv"
    dump_trace(
        FlowGenerator(n_flows=128, seed=5, distribution="zipf").trace(1500),
        path,
    )
    return str(path)


class TestChaosRuns:
    def test_synthetic_run_accounts_and_exits_zero(self, capsys):
        assert main(QUICK + ["--rate", "0.01", "--expect-faults"]) == 0
        out = capsys.readouterr().out
        assert "chaos replay: 2000 packets" in out
        assert "accounting: OK" in out
        assert "injected" in out

    def test_trace_file_run(self, trace_csv, capsys):
        assert main([trace_csv, "--cores", "4", "--rate", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "chaos replay: 1500 packets" in out

    def test_zero_rate_injects_nothing(self, capsys):
        assert main(QUICK + ["--rate", "0"]) == 0
        out = capsys.readouterr().out
        assert "injected" not in out
        assert "accounting: OK" in out

    def test_expect_faults_fails_on_zero_rate(self, capsys):
        assert main(QUICK + ["--rate", "0", "--expect-faults"]) == 1
        assert "expected injected faults" in capsys.readouterr().err

    def test_crash_run_reports_watchdog(self, capsys):
        assert main(QUICK + ["--crash-core", "1", "--crash-at", "100"]) == 0
        out = capsys.readouterr().out
        assert "core 1 crash" in out
        assert "re-steered" in out
        assert "accounting: OK" in out

    def test_wedge_run_reports_watchdog(self, capsys):
        argv = QUICK + [
            "--wedge-core", "0", "--wedge-at", "50",
            "--watchdog-deadline", "128",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "core 0 wedge" in out
        assert "accounting: OK" in out

    def test_json_report(self, capsys):
        assert main(QUICK + ["--rate", "0.01", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        acc = report["accounting"]
        assert report["accounted"] is True
        assert (
            acc["packets_in"] + acc["duplicated"]
            == acc["forwarded"] + acc["dropped"] + acc["aborted"]
        )
        assert report["total_injected"] > 0

    def test_same_seed_same_report(self, capsys):
        argv = QUICK + ["--rate", "0.02", "--seed", "9", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second

    @pytest.mark.parametrize("nf", ["countmin", "bloom", "maglev", "flow_monitor"])
    def test_every_nf_survives_chaos(self, nf, capsys):
        argv = ["--packets", "1000", "--cores", "2", "--flows", "64",
                "--rate", "0.05", "--nf", nf]
        assert main(argv) == 0
        assert "accounting: OK" in capsys.readouterr().out


class TestChaosCliErrors:
    def test_unreadable_trace_exits_one(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.csv")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_all_cores_dead_is_a_clean_failure(self, capsys):
        argv = ["--packets", "500", "--cores", "1", "--crash-core", "0"]
        assert main(argv) == 1
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", [
        ["--rate", "1.5"],
        ["--rate", "lots"],
        ["--cores", "0"],
        ["--batch-size", "-4"],
        ["--watchdog-deadline", "0"],
        ["--nf", "teleport"],
        ["--policy", "magic"],
    ])
    def test_bad_arguments_exit_two(self, argv):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2


class TestLatencyAndSloFlags:
    def test_burst_adds_latency_to_json(self, capsys):
        argv = QUICK + ["--rate", "0", "--burst", "4e6", "--json"]
        assert main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["accounted"] is True
        latency = report["latency"]
        assert latency["n"] == 2000
        assert latency["p50_us"] <= latency["p99_us"]
        assert report["overflow"] == 0

    def test_burst_with_crash_stays_accounted(self, capsys):
        argv = QUICK + [
            "--rate", "0", "--burst", "8e6", "--crash-core", "1",
            "--crash-at", "100", "--json",
        ]
        assert main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["accounted"] is True
        assert report["failures"][0]["kind"] == "crash"

    def test_detection_mean_changes_wedge_loss(self, capsys):
        def lost(extra):
            argv = QUICK + [
                "--rate", "0", "--wedge-core", "0", "--wedge-at", "50",
                "--json",
            ] + extra
            assert main(argv) == 0
            report = json.loads(capsys.readouterr().out)
            return report["failures"][0]["lost"]

        fixed = lost(["--watchdog-deadline", "1024"])
        probabilistic = lost(["--detection-mean", "100"])
        assert probabilistic != fixed

    def test_repack_flag_marks_failure(self, capsys):
        argv = QUICK + [
            "--rate", "0", "--policy", "ntuple", "--repack",
            "--crash-core", "1", "--crash-at", "100", "--json",
        ]
        assert main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["failures"][0]["repacked"] is True

    def test_autoscale_recovery_scenario_exits_zero(self, capsys):
        argv = [
            "--packets", "12000", "--flows", "256",
            "--cores", "4", "--initial-cores", "2",
            "--rate", "0",
            "--crash-core", "1", "--crash-at", "1500",
            "--burst", "9e6", "--slo-p99", "60",
            "--autoscale", "--expect-recovery", "--json",
        ]
        assert main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["accounted"] is True
        assert report["slo"]["violating_epochs"]
        assert report["slo"]["recovery_s"] is not None
        assert any(
            e.startswith("scale-up")
            for epoch in report["timeline"] for e in epoch["events"]
        )

    def test_autoscale_json_deterministic(self, capsys):
        argv = QUICK + [
            "--rate", "0", "--burst", "6e6", "--slo-p99", "80",
            "--autoscale", "--json", "--seed", "7",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        assert json.loads(capsys.readouterr().out) == first

    @pytest.mark.parametrize("argv, hint", [
        (["--slo-p99", "60"], "--slo-p99 needs --burst"),
        (["--autoscale", "--burst", "1e6"], "--autoscale needs"),
        (["--burst", "1e6", "--slo-p99", "60", "--initial-cores", "2"],
         "--initial-cores"),
        (["--expect-recovery"], "--expect-recovery needs --autoscale"),
        (["--burst", "garbage"], "burst spec"),
        (["--detection-mean", "0"], "positive"),
    ])
    def test_flag_validation_exits_two(self, argv, hint, capsys):
        with pytest.raises(SystemExit) as exc:
            main(QUICK + argv)
        assert exc.value.code == 2
        assert hint in capsys.readouterr().err
