"""FaultPlan / FaultInjector: validation, determinism, errno mapping."""

import pytest

from repro.faults import (
    ERRNO,
    HELPER,
    MAP_FULL,
    MAP_NOMEM,
    PACKET_KINDS,
    PKT_CORRUPT,
    PKT_DROP,
    PKT_DUP,
    PKT_TRUNCATE,
    RATE_KINDS,
    FaultInjector,
    FaultPlan,
)
from repro.ebpf.maps import MapFullError, MapNoMemError


class TestPlanValidation:
    def test_default_plan_is_inert(self):
        plan = FaultPlan()
        assert not plan.any_rate
        assert plan.crash_point(0) is None
        assert plan.wedge_point(0) is None

    @pytest.mark.parametrize("field", [
        "drop_rate", "corrupt_rate", "truncate_rate", "dup_rate",
        "helper_rate", "map_full_rate", "map_nomem_rate",
    ])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, bad):
        with pytest.raises(ValueError):
            FaultPlan(**{field: bad})

    def test_negative_points_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_at=-1)
        with pytest.raises(ValueError):
            FaultPlan(wedge_at=-5)

    def test_uniform_splits_rate_across_kinds(self):
        plan = FaultPlan.uniform(0.06, seed=3)
        rates = plan.rates()
        for kind in (PKT_DROP, PKT_CORRUPT, PKT_TRUNCATE, PKT_DUP,
                     HELPER, MAP_FULL):
            assert rates[kind] == pytest.approx(0.01)
        assert rates[MAP_NOMEM] == 0.0
        assert plan.seed == 3

    def test_uniform_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultPlan.uniform(1.5)

    def test_plans_are_frozen_and_hashable(self):
        plan = FaultPlan.uniform(0.01)
        assert hash(plan) == hash(FaultPlan.uniform(0.01))
        with pytest.raises(Exception):
            plan.seed = 99

    def test_crash_and_wedge_points(self):
        plan = FaultPlan(crash_core=2, crash_at=100, wedge_core=5, wedge_at=7)
        assert plan.crash_point(2) == 100
        assert plan.crash_point(3) is None
        assert plan.wedge_point(5) == 7
        assert plan.wedge_point(2) is None

    def test_negative_core_indices_rejected(self):
        with pytest.raises(ValueError, match="crash_core"):
            FaultPlan(crash_core=-1)
        with pytest.raises(ValueError, match="wedge_core"):
            FaultPlan(wedge_core=-2)

    def test_same_core_crash_and_wedge_rejected(self):
        with pytest.raises(ValueError, match="cannot both crash and wedge"):
            FaultPlan(crash_core=3, wedge_core=3)

    def test_different_cores_may_crash_and_wedge(self):
        plan = FaultPlan(crash_core=0, wedge_core=1)
        assert plan.crash_point(0) == 0
        assert plan.wedge_point(1) == 0

    def test_validate_for_cores_accepts_in_range(self):
        FaultPlan(crash_core=3, wedge_core=1).validate_for_cores(4)
        FaultPlan().validate_for_cores(1)

    @pytest.mark.parametrize("field", ["crash_core", "wedge_core"])
    def test_validate_for_cores_rejects_out_of_range(self, field):
        plan = FaultPlan(**{field: 9})
        with pytest.raises(ValueError, match="nonexistent core"):
            plan.validate_for_cores(8)
        # The message tells the operator what the fleet actually has.
        with pytest.raises(ValueError, match="cores 0..7"):
            plan.validate_for_cores(8)

    def test_validate_for_cores_rejects_bad_fleet(self):
        with pytest.raises(ValueError, match="n_cores"):
            FaultPlan().validate_for_cores(0)

    def test_errno_table_matches_kernel(self):
        assert ERRNO[MAP_FULL] == ("E2BIG", -7)
        assert ERRNO[MAP_NOMEM] == ("ENOMEM", -12)
        assert ERRNO[HELPER] == ("EINVAL", -22)


class TestSeedDeterminism:
    """Satellite: identical seeds -> bit-identical fault schedules."""

    def test_schedule_is_reproducible(self):
        plan = FaultPlan.uniform(0.05, seed=42)
        for kind in RATE_KINDS:
            assert plan.schedule(kind, 5000) == plan.schedule(kind, 5000)

    def test_equal_plans_equal_schedules(self):
        a = FaultPlan.uniform(0.05, seed=42)
        b = FaultPlan.uniform(0.05, seed=42)
        for kind in PACKET_KINDS:
            assert a.schedule(kind, 5000) == b.schedule(kind, 5000)

    def test_different_seed_diverges(self):
        a = FaultPlan.uniform(0.05, seed=42)
        b = FaultPlan.uniform(0.05, seed=43)
        assert any(
            a.schedule(k, 5000) != b.schedule(k, 5000) for k in PACKET_KINDS
        )

    def test_kind_streams_are_decorrelated(self):
        plan = FaultPlan.uniform(0.2, seed=7)
        schedules = [tuple(plan.schedule(k, 2000)) for k in PACKET_KINDS]
        assert len(set(schedules)) == len(schedules)

    def test_core_streams_are_decorrelated(self):
        plan = FaultPlan(drop_rate=0.1, seed=7)
        assert plan.schedule(PKT_DROP, 2000, core=0) != plan.schedule(
            PKT_DROP, 2000, core=1
        )

    def test_injector_matches_schedule(self):
        plan = FaultPlan(drop_rate=0.05, seed=9)
        expected = set(plan.schedule(PKT_DROP, 3000))
        injector = plan.injector()
        fired = {
            i for i in range(3000) if injector.packet_fault() == PKT_DROP
        }
        assert fired == expected
        assert injector.injected[PKT_DROP] == len(expected)

    def test_two_injectors_bit_identical(self):
        plan = FaultPlan.uniform(0.05, seed=11)
        inj_a, inj_b = plan.injector(), plan.injector()
        seq_a = [inj_a.packet_fault() for _ in range(4000)]
        seq_b = [inj_b.packet_fault() for _ in range(4000)]
        assert seq_a == seq_b
        assert inj_a.injected == inj_b.injected

    def test_rate_zero_never_fires(self):
        injector = FaultPlan(seed=5).injector()
        assert all(injector.packet_fault() is None for _ in range(1000))
        assert not injector.helper_fault()
        assert injector.map_update_fault() is None
        assert injector.total_injected == 0

    def test_rate_one_always_fires_with_precedence(self):
        injector = FaultPlan(drop_rate=1.0, corrupt_rate=1.0, seed=1).injector()
        # Drop shadows corrupt: only the highest-precedence kind counts.
        assert all(injector.packet_fault() == PKT_DROP for _ in range(100))
        assert injector.injected[PKT_DROP] == 100
        assert injector.injected[PKT_CORRUPT] == 0


class TestMapFaults:
    def test_map_full_returns_e2big_instance(self):
        injector = FaultPlan(map_full_rate=1.0).injector()
        exc = injector.map_update_fault("flows")
        assert isinstance(exc, MapFullError)
        assert exc.errno == -7
        assert "flows" in str(exc)

    def test_map_nomem_returns_enomem_instance(self):
        injector = FaultPlan(map_nomem_rate=1.0).injector()
        exc = injector.map_update_fault()
        assert isinstance(exc, MapNoMemError)
        assert exc.errno == -12

    def test_full_takes_precedence_over_nomem(self):
        injector = FaultPlan(map_full_rate=1.0, map_nomem_rate=1.0).injector()
        assert isinstance(injector.map_update_fault(), MapFullError)

    def test_describe_reports_ledger(self):
        injector = FaultPlan(drop_rate=1.0, seed=2).injector(core=3)
        injector.packet_fault()
        desc = injector.describe()
        assert desc["core"] == 3
        assert desc["injected"][PKT_DROP] == 1
