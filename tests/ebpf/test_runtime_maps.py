"""Tests for the simulated runtime and BPF maps."""

import pytest

from repro.ebpf.cost_model import Category, ExecMode
from repro.ebpf.maps import (
    BpfArrayMap,
    BpfHashMap,
    BpfLruHashMap,
    BpfPercpuArray,
    MapFullError,
)
from repro.ebpf.runtime import BpfRuntime


@pytest.fixture
def rt():
    return BpfRuntime(mode=ExecMode.PURE_EBPF, seed=1)


class TestRuntime:
    def test_prandom_is_deterministic_per_seed(self):
        a = BpfRuntime(seed=5)
        b = BpfRuntime(seed=5)
        assert [a.prandom_u32() for _ in range(10)] == [
            b.prandom_u32() for _ in range(10)
        ]

    def test_prandom_differs_across_seeds(self):
        a = BpfRuntime(seed=5)
        b = BpfRuntime(seed=6)
        assert [a.prandom_u32() for _ in range(5)] != [
            b.prandom_u32() for _ in range(5)
        ]

    def test_prandom_charges_helper_cost(self, rt):
        rt.prandom_u32()
        assert rt.cycles.total == rt.costs.prandom_helper

    def test_clock_advances_monotonically(self, rt):
        rt.advance_time_ns(100)
        rt.advance_time_ns(50)
        assert rt.now_ns == 150
        with pytest.raises(ValueError):
            rt.advance_time_ns(-1)

    def test_ktime_charges_helper_call(self, rt):
        rt.advance_time_ns(42)
        assert rt.ktime_get_ns() == 42
        assert rt.cycles.total == rt.costs.helper_call

    def test_spin_lock_charges(self, rt):
        rt.spin_lock()
        rt.spin_unlock()
        assert rt.cycles.total == rt.costs.spin_lock + rt.costs.spin_unlock

    def test_reset_clears_state(self, rt):
        rt.charge(100)
        rt.advance_time_ns(10)
        rt.reset(seed=1)
        assert rt.cycles.total == 0
        assert rt.now_ns == 0


class TestHashMap:
    def test_lookup_update_delete(self, rt):
        m = BpfHashMap(rt, max_entries=4)
        assert m.lookup("k") is None
        m.update("k", 1)
        assert m.lookup("k") == 1
        assert m.delete("k") is True
        assert m.delete("k") is False

    def test_max_entries_enforced(self, rt):
        m = BpfHashMap(rt, max_entries=2)
        m.update(1, "a")
        m.update(2, "b")
        with pytest.raises(MapFullError):
            m.update(3, "c")
        # Updating an existing key is fine at capacity.
        m.update(1, "a2")
        assert m.lookup(1) == "a2"

    def test_costs_charged(self, rt):
        m = BpfHashMap(rt, max_entries=4)
        m.update("k", 1)
        m.lookup("k")
        m.delete("k")
        expected = rt.costs.map_update + rt.costs.map_lookup + rt.costs.map_delete
        assert rt.cycles.total == expected

    def test_raw_access_uncosted(self, rt):
        m = BpfHashMap(rt, max_entries=4)
        m.raw_update("k", 9)
        assert m.raw_lookup("k") == 9
        assert rt.cycles.total == 0

    def test_invalid_max_entries(self, rt):
        with pytest.raises(ValueError):
            BpfHashMap(rt, max_entries=0)

    def test_len_and_contains(self, rt):
        m = BpfHashMap(rt, max_entries=4)
        m.update("a", 1)
        assert len(m) == 1
        assert "a" in m and "b" not in m


class TestArrayMap:
    def test_default_fill_and_bounds(self, rt):
        m = BpfArrayMap(rt, max_entries=3, default=0)
        assert m.lookup(0) == 0
        m.update(2, 7)
        assert m.lookup(2) == 7
        with pytest.raises(IndexError):
            m.lookup(3)
        with pytest.raises(IndexError):
            m.update(-1, 0)

    def test_len(self, rt):
        assert len(BpfArrayMap(rt, max_entries=5)) == 5


class TestPercpuArray:
    def test_per_cpu_isolation(self, rt):
        m = BpfPercpuArray(rt, max_entries=2, n_cpus=2, default=0)
        m.update(0, 5, cpu=0)
        m.update(0, 9, cpu=1)
        assert m.lookup(0, cpu=0) == 5
        assert m.lookup(0, cpu=1) == 9

    def test_cheaper_than_hash_lookup(self, rt):
        m = BpfPercpuArray(rt, max_entries=2)
        m.lookup(0)
        assert rt.cycles.total == rt.costs.percpu_array_lookup
        assert rt.cycles.total < rt.costs.map_lookup

    def test_bounds(self, rt):
        m = BpfPercpuArray(rt, max_entries=2, n_cpus=1)
        with pytest.raises(IndexError):
            m.lookup(0, cpu=1)
        with pytest.raises(IndexError):
            m.lookup(2, cpu=0)


class TestLruHashMap:
    def test_evicts_least_recent(self, rt):
        m = BpfLruHashMap(rt, max_entries=2)
        m.update("a", 1)
        m.update("b", 2)
        m.lookup("a")          # touch a; b becomes LRU
        m.update("c", 3)       # evicts b
        assert "b" not in m
        assert "a" in m and "c" in m

    def test_update_refreshes_recency(self, rt):
        m = BpfLruHashMap(rt, max_entries=2)
        m.update("a", 1)
        m.update("b", 2)
        m.update("a", 10)      # refresh a
        m.update("c", 3)       # evicts b, not a
        assert m.lookup("a") == 10
        assert "b" not in m

    def test_delete(self, rt):
        m = BpfLruHashMap(rt, max_entries=2)
        m.update("a", 1)
        assert m.delete("a") is True
        assert m.delete("a") is False
