"""VM tests: verified programs run correctly; faults are caught."""

import pytest

from repro.ebpf.insn import (
    Alu,
    Call,
    Exit,
    Imm,
    Jmp,
    JmpIf,
    Load,
    Mov,
    Program,
    Store,
    R0,
    R1,
    R2,
    R3,
    R6,
    R10,
)
from repro.ebpf.kfunc_meta import (
    ARG_CONST,
    ARG_KPTR,
    KF_ACQUIRE,
    KF_RELEASE,
    KF_RET_NULL,
    RET_KPTR,
    RET_VOID,
    default_registry,
)
from repro.ebpf.verifier import Verifier
from repro.ebpf.vm import KernelObject, Pointer, Vm, VmFault


@pytest.fixture
def registry():
    reg = default_registry()

    def obj_new_impl(vm, size):
        obj = KernelObject(int(size), tag="obj")
        vm.live_objects.append(obj)
        return Pointer(obj)

    def obj_drop_impl(vm, ptr):
        ptr.region.free()

    # Bind implementations to the stock alloc/free kfuncs.
    reg.get("bpf_obj_new").__dict__  # frozen; rebuild instead
    return reg


def make_registry_with_impls():
    from repro.ebpf.kfunc_meta import KfuncRegistry

    reg = KfuncRegistry()

    def obj_new_impl(vm, size):
        obj = KernelObject(int(size), tag="obj")
        vm.live_objects.append(obj)
        return Pointer(obj)

    def obj_drop_impl(vm, ptr):
        ptr.region.free()

    reg.define("bpf_get_prandom_u32", impl=lambda vm: 0x1234)
    reg.define(
        "obj_new",
        args=(ARG_CONST,),
        ret=RET_KPTR,
        flags=(KF_ACQUIRE, KF_RET_NULL),
        impl=obj_new_impl,
    )
    reg.define(
        "obj_drop", args=(ARG_KPTR,), ret=RET_VOID, flags=(KF_RELEASE,),
        impl=obj_drop_impl,
    )
    return reg


def run_verified(registry, *insns):
    prog = Program(list(insns), name="t")
    Verifier(registry).verify(prog)
    return Vm(registry).run(prog)


class TestExecution:
    def test_arithmetic(self):
        reg = make_registry_with_impls()
        assert run_verified(
            reg,
            Mov(R0, Imm(6)),
            Alu("mul", R0, Imm(7)),
            Exit(),
        ) == 42

    def test_stack_roundtrip(self):
        reg = make_registry_with_impls()
        assert run_verified(
            reg,
            Store(R10, -8, Imm(99)),
            Load(R0, R10, -8),
            Exit(),
        ) == 99

    def test_branching(self):
        reg = make_registry_with_impls()
        assert run_verified(
            reg,
            Mov(R0, Imm(5)),
            JmpIf("gt", R0, Imm(3), 3),
            Exit(),
            Mov(R0, Imm(1)),
            Exit(),
        ) == 1

    def test_kfunc_scalar_result(self):
        reg = make_registry_with_impls()
        assert run_verified(reg, Call("bpf_get_prandom_u32"), Exit()) == 0x1234

    def test_wraparound_64bit(self):
        reg = make_registry_with_impls()
        assert run_verified(
            reg,
            Mov(R0, Imm(0)),
            Alu("sub", R0, Imm(1)),
            Exit(),
        ) == (1 << 64) - 1

    def test_kernel_object_write_read(self):
        """Alloc, null-check, write, read back, release — Listing-3 shape."""
        reg = make_registry_with_impls()
        result = run_verified(
            reg,
            Mov(R1, Imm(16)),
            Call("obj_new"),
            JmpIf("ne", R0, Imm(0), 5),
            Mov(R0, Imm(0)),
            Exit(),
            Mov(R6, R0),
            Store(R6, 0, Imm(77)),
            Load(R3, R6, 0),
            Store(R10, -8, R3),
            Mov(R1, R6),
            Call("obj_drop"),
            Load(R0, R10, -8),
            Exit(),
        )
        assert result == 77

    def test_pointer_spill_fill(self):
        reg = make_registry_with_impls()
        result = run_verified(
            reg,
            Mov(R2, R10),
            Store(R10, -8, R2),
            Load(R3, R10, -8),
            Store(R3, -16, Imm(5)),
            Load(R0, R10, -16),
            Exit(),
        )
        assert result == 5


class TestRuntimeFaults:
    """Unverified programs fault at runtime (defense in depth)."""

    def _vm(self):
        return Vm(make_registry_with_impls())

    def test_division_by_zero_faults(self):
        prog = Program([Mov(R0, Imm(1)), Mov(R2, Imm(0)),
                        Alu("div", R0, R2), Exit()])
        with pytest.raises(VmFault, match="division by zero"):
            self._vm().run(prog)

    def test_stack_oob_faults(self):
        prog = Program([Store(R10, -600, Imm(1)), Mov(R0, Imm(0)), Exit()])
        with pytest.raises(VmFault, match="out of bounds"):
            self._vm().run(prog)

    def test_use_after_free_faults(self):
        """The VM catches what an unverified program could do."""
        prog = Program([
            Mov(R1, Imm(8)),
            Call("obj_new"),
            Mov(R6, R0),
            Mov(R1, R6),
            Call("obj_drop"),
            Load(R0, R6, 0),   # verified programs can never reach this
            Exit(),
        ])
        with pytest.raises(VmFault, match="use-after-free"):
            self._vm().run(prog)

    def test_runaway_program_step_limit(self):
        prog = Program([Mov(R0, Imm(0)), Jmp(0), Exit()])
        with pytest.raises(VmFault, match="step limit"):
            self._vm().run(prog, max_steps=50)

    def test_exit_with_pointer_faults(self):
        prog = Program([Mov(R2, R10), Mov(R0, R2), Exit()])
        # Mov into R0 of a pointer then exit.
        with pytest.raises(VmFault, match="pointer in R0"):
            self._vm().run(prog)


class TestVerifierVmAgreement:
    """Programs the verifier accepts never fault in the VM."""

    @pytest.mark.parametrize("value", [0, 1, 41, 2 ** 32])
    def test_conditional_writes(self, value):
        reg = make_registry_with_impls()
        result = run_verified(
            reg,
            Mov(R0, Imm(value)),
            JmpIf("ge", R0, Imm(42), 5),
            Mov(R0, Imm(0)),
            Store(R10, -8, R0),
            Jmp(6),
            Store(R10, -8, Imm(1)),
            Load(R0, R10, -8),
            Exit(),
        )
        assert result == (1 if value >= 42 else 0)
