"""Unit tests for the verifier's value-tracking domains.

Tnum (known-bits) and interval arithmetic are checked two ways: exact
expectations on hand-picked cases, and a randomized soundness sweep —
for random concrete values inside two abstract inputs, the concrete
ALU result must land inside the abstract output (the only property an
abstract domain owes anyone).
"""

import random

import pytest

from repro.ebpf.tnum import (
    MASK64,
    ScalarRange,
    Tnum,
    TNUM_UNKNOWN,
    alu_range,
    const_range,
    range_from_bounds,
    refine_cmp,
    tnum_const,
    tnum_range,
    unknown_range,
)

U64 = lambda x: x & MASK64


class TestTnum:
    def test_const_is_fully_known(self):
        t = tnum_const(0xDEAD)
        assert t.mask == 0
        assert t.value == 0xDEAD
        assert t.contains(0xDEAD)
        assert not t.contains(0xDEAE)

    def test_unknown_contains_everything(self):
        assert TNUM_UNKNOWN.contains(0)
        assert TNUM_UNKNOWN.contains(MASK64)
        assert TNUM_UNKNOWN.mask == MASK64

    def test_range_covers_endpoints(self):
        t = tnum_range(3, 17)
        for v in (3, 7, 16, 17):
            assert t.contains(v)

    def test_and_clears_known_zero_bits(self):
        t = TNUM_UNKNOWN.and_(tnum_const(7))
        assert t.value == 0
        assert t.mask == 7          # only the low 3 bits can be set
        assert not t.known_zero_bits(3)
        # A left shift by 3 makes the low 3 bits provably zero — the
        # alignment fact variable-offset stack access relies on.
        assert TNUM_UNKNOWN.lshift(3).known_zero_bits(3)

    def test_min_max_value(self):
        t = tnum_range(8, 24)
        assert t.min_value <= 8
        assert t.max_value >= 24

    def test_intersect_of_disjoint_consts_is_none(self):
        assert tnum_const(1).intersect(tnum_const(2)) is None

    @pytest.mark.parametrize("op", ["add", "sub", "and_", "or_", "xor", "mul"])
    def test_binary_ops_sound(self, op):
        rng = random.Random(42)
        for _ in range(200):
            a_val, b_val = rng.getrandbits(64), rng.getrandbits(64)
            a_mask, b_mask = rng.getrandbits(64), rng.getrandbits(64)
            ta = Tnum(a_val & ~a_mask, a_mask)
            tb = Tnum(b_val & ~b_mask, b_mask)
            # Any concrete members of the tnums...
            ca = ta.value | (rng.getrandbits(64) & ta.mask)
            cb = tb.value | (rng.getrandbits(64) & tb.mask)
            out = getattr(ta, op)(tb)
            concrete = {
                "add": ca + cb, "sub": ca - cb, "mul": ca * cb,
                "and_": ca & cb, "or_": ca | cb, "xor": ca ^ cb,
            }[op]
            assert out.contains(U64(concrete)), (op, hex(ca), hex(cb))

    @pytest.mark.parametrize("op", ["lshift", "rshift"])
    def test_shift_sound(self, op):
        rng = random.Random(43)
        for _ in range(100):
            mask = rng.getrandbits(64)
            t = Tnum(rng.getrandbits(64) & ~mask, mask)
            c = t.value | (rng.getrandbits(64) & t.mask)
            sh = rng.randrange(64)
            out = getattr(t, op)(sh)
            concrete = U64(c << sh) if op == "lshift" else c >> sh
            assert out.contains(concrete)


class TestScalarRange:
    def test_const_range(self):
        r = const_range(-16)
        assert r.const == U64(-16)
        assert r.umin == r.umax == U64(-16)

    def test_unknown_range_spans_u64(self):
        r = unknown_range()
        assert r.umin == 0 and r.umax == MASK64
        assert r.const is None

    def test_is_nonzero(self):
        one_to_eight = alu_range(
            "add", alu_range("and", unknown_range(), const_range(7)),
            const_range(1),
        )
        assert one_to_eight.is_nonzero
        assert not unknown_range().is_nonzero

    @pytest.mark.parametrize(
        "op", ["add", "sub", "mul", "and", "or", "xor", "lsh", "rsh"]
    )
    def test_alu_range_sound(self, op):
        rng = random.Random(44)
        for _ in range(200):
            lo_a, hi_a = sorted((rng.getrandbits(16), rng.getrandbits(16)))
            lo_b, hi_b = sorted((rng.getrandbits(6), rng.getrandbits(6)))
            ra = range_from_bounds(lo_a, hi_a)
            rb = range_from_bounds(lo_b, hi_b)
            out = alu_range(op, ra, rb)
            ca, cb = rng.randint(lo_a, hi_a), rng.randint(lo_b, hi_b)
            concrete = {
                "add": ca + cb, "sub": ca - cb, "mul": ca * cb,
                "and": ca & cb, "or": ca | cb, "xor": ca ^ cb,
                "lsh": ca << (cb & 63), "rsh": ca >> (cb & 63),
            }[op]
            concrete = U64(concrete)
            assert out.umin <= concrete <= out.umax, (op, ca, cb)
            assert out.tnum.contains(concrete), (op, ca, cb)

    def test_div_mod_range(self):
        a = range_from_bounds(100, 200)
        b = range_from_bounds(2, 5)
        d = alu_range("div", a, b)
        assert d.umin <= 100 // 5 and d.umax >= 200 // 2
        m = alu_range("mod", a, b)
        assert m.umax <= 4


class TestRefineCmp:
    def test_lt_refines_both_sides(self):
        a = range_from_bounds(0, 100)
        b = const_range(10)
        taken = refine_cmp("lt", a, b, taken=True)
        assert taken is not None
        na, _ = taken
        assert na.umax == 9
        untaken = refine_cmp("lt", a, b, taken=False)
        na, _ = untaken
        assert na.umin == 10

    def test_eq_intersects(self):
        a = range_from_bounds(0, 100)
        b = const_range(42)
        na, nb = refine_cmp("eq", a, b, taken=True)
        assert na.const == 42

    def test_infeasible_branch_returns_none(self):
        a = const_range(5)
        b = const_range(10)
        assert refine_cmp("gt", a, b, taken=True) is None
        assert refine_cmp("lt", a, b, taken=False) is None

    def test_refinement_sound(self):
        rng = random.Random(45)
        ops = ["eq", "ne", "lt", "le", "gt", "ge"]
        for _ in range(300):
            lo_a, hi_a = sorted((rng.randrange(64), rng.randrange(64)))
            lo_b, hi_b = sorted((rng.randrange(64), rng.randrange(64)))
            a = range_from_bounds(lo_a, hi_a)
            b = range_from_bounds(lo_b, hi_b)
            op = rng.choice(ops)
            ca, cb = rng.randint(lo_a, hi_a), rng.randint(lo_b, hi_b)
            taken = {
                "eq": ca == cb, "ne": ca != cb, "lt": ca < cb,
                "le": ca <= cb, "gt": ca > cb, "ge": ca >= cb,
            }[op]
            refined = refine_cmp(op, a, b, taken=taken)
            # The branch actually taken by (ca, cb) can never be
            # refined away, and must still contain both values.
            assert refined is not None, (op, ca, cb)
            na, nb = refined
            assert na.umin <= ca <= na.umax
            assert nb.umin <= cb <= nb.umax
