"""The bundled-program contract and the ``repro.ebpf.verify`` CLI.

Every bundled case's verdict (and rejection wording) is pinned here —
the same contract the CI ``verify-smoke`` job enforces through
``python -m repro.ebpf.verify --strict``.  Also covers the new
verifier capabilities end to end through their canonical programs:
bounded loops, variable-offset access, kptr region sizing, and the
rejection diagnostics (``--explain``).
"""

import json

import pytest

from repro.ebpf.insn import (
    Alu,
    Call,
    Exit,
    Imm,
    JmpIf,
    Load,
    Mov,
    Program,
    Store,
    R0,
    R1,
    R6,
)
from repro.ebpf.kfunc_meta import default_registry
from repro.ebpf.progs import bundled_cases, get_case, runnable_registry
from repro.ebpf.verifier import Verifier, VerifierError
from repro.ebpf.verify import main as verify_main
from repro.ebpf.vm import Vm


@pytest.mark.parametrize("case", bundled_cases(), ids=lambda c: c.name)
def test_bundled_verdicts(case):
    verifier = Verifier(default_registry())
    if case.accept:
        vp = verifier.verify(case.prog)
        assert vp.stats.states_explored > 0
    else:
        with pytest.raises(VerifierError) as exc:
            verifier.verify(case.prog)
        assert case.reject_match in str(exc.value)


def test_accepted_cases_elide_checks():
    no_elision_expected = {"loop_counted", "range_dead_branch"}
    for case in bundled_cases():
        if not case.accept:
            continue
        vp = Verifier(default_registry()).verify(case.prog)
        if case.name in no_elision_expected:
            continue
        assert vp.stats.checks_elided > 0, case.name


def test_loop_counted_bounds_recorded():
    vp = Verifier(default_registry()).verify(get_case("loop_counted").prog)
    assert vp.stats.loops_bounded == 1
    assert vp.stats.max_trip_count == 15
    assert vp.annotations.loop_bounds
    # The accepted loop actually runs and computes sum(0..15).
    r0 = Vm(runnable_registry(), proofs=vp).run(vp.prog)
    assert r0 == sum(range(16))


def test_kptr_size_bounds_accesses():
    """Accesses through ``bpf_obj_new(N)`` are bounded by N, not by the
    generic region default (regression: fuzz-found soundness hole)."""

    def prog(store_off):
        return Program(
            [
                Mov(R1, Imm(64)),
                Call("bpf_obj_new"),
                JmpIf("eq", R0, Imm(0), 7),
                Mov(R6, R0),
                Store(R6, store_off, Imm(1)),
                Mov(R1, R6),
                Call("bpf_obj_drop"),
                Mov(R0, Imm(0)),
                Exit(),
            ],
            name="kptr_size",
        )

    verifier = Verifier(default_registry())
    vp = verifier.verify(prog(56))          # last in-bounds u64
    assert Vm(runnable_registry(), proofs=vp).run(vp.prog) == 0
    with pytest.raises(VerifierError, match="out of bounds"):
        verifier.verify(prog(64))           # one past the declared size


def test_rejection_diagnostics_carry_path_and_state():
    case = get_case("pkt_missing_guard")
    with pytest.raises(VerifierError) as exc:
        Verifier(default_registry()).verify(case.prog)
    err = exc.value
    assert err.pc == 1
    assert err.insn_text is not None
    explain = err.explain()
    assert "at:" in explain
    assert "path: 0 -> 1" in explain
    assert "state:" in explain


# -- CLI ---------------------------------------------------------------------


def test_cli_list(capsys):
    assert verify_main(["--list"]) == 0
    out = capsys.readouterr().out
    for case in bundled_cases():
        assert case.name in out


def test_cli_strict_all_bundled(capsys):
    assert verify_main(["--strict"]) == 0
    out = capsys.readouterr().out
    assert "UNEXPECTED" not in out
    assert f"{len(bundled_cases())} programs" in out


def test_cli_single_program_prints_facts(capsys):
    assert verify_main(["--program", "pkt_guarded_read"]) == 0
    out = capsys.readouterr().out
    assert "mem-check elided" in out
    assert "r2=pkt" in out                      # interleaved range facts


def test_cli_explain_on_rejection(capsys):
    assert verify_main(["--program", "div_maybe_zero", "--explain"]) == 0
    out = capsys.readouterr().out
    assert "REJECT" in out and "division by zero" in out
    assert "path:" in out


def test_cli_json_report(capsys):
    assert verify_main(["--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["summary"]["unexpected"] == 0
    assert report["summary"]["programs"] == len(bundled_cases())
    by_name = {r["name"]: r for r in report["programs"]}
    assert by_name["nf_classifier"]["verdict"] == "accept"
    assert by_name["nf_classifier"]["safe_div"] == [15]


def test_cli_jit_backend_bench(capsys):
    """`--backend jit --bench` compiles every accepted program and
    proves interp/JIT cycle parity; strict mode fails on any mismatch."""
    assert verify_main(["--backend", "jit", "--bench", "--strict",
                        "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["summary"]["unexpected"] == 0
    accepted = [r for r in report["programs"] if r["verdict"] == "accept"]
    assert accepted
    for r in accepted:
        assert r["jit"]["compile_ms"] > 0
        assert r["jit"]["parity"] is True, r["name"]
        assert r["jit"]["interp"]["cycles"] == r["jit"]["jit"]["cycles"]
    by_name = {r["name"]: r for r in accepted}
    # The sketch NF's counted loop is unrolled (3 trips -> 4 copies).
    assert by_name["nf_cm_sketch"]["jit"]["unrolled"] == {"12": 4}


def test_cli_bench_requires_jit_backend():
    with pytest.raises(SystemExit):
        verify_main(["--bench"])


def test_cli_asm_file(tmp_path, capsys):
    good = tmp_path / "good.s"
    good.write_text("r0 = 0\nexit\n")
    assert verify_main(["--asm", str(good)]) == 0

    bad = tmp_path / "bad.s"
    bad.write_text("r0 = *(u64 *)(r10 -8)\nexit\n")
    assert verify_main(["--asm", str(bad)]) == 1      # verifier reject

    junk = tmp_path / "junk.s"
    junk.write_text("not an instruction\n")
    assert verify_main(["--asm", str(junk)]) == 2     # parse error
    capsys.readouterr()


def test_get_case_unknown_name():
    with pytest.raises(KeyError, match="no bundled program"):
        get_case("nope")
