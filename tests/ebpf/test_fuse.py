"""Chain fuser: parity, specialization, caching (repro.ebpf.fuse).

The fused closure's contract is the same bit-identical one the PR 5
JIT pinned, extended to whole chains: for every bundled chain
combination (and randomly fused fuzz chains), the fused backend must
produce the same verdict sequence, the same aggregated ``VmStats``,
the same ``Cycles`` totals *and* per-category charges, and the same
kfunc closure state (sketch rows, steering tables, PRNG position) as
running the interpreted chain stage by stage.
"""

import os
import random

import pytest

from repro.ebpf.fuse import (
    FuseError,
    cache_info,
    fuse_chain,
    fused_for,
)
from repro.ebpf.progs import (
    NF_CHAIN_STAGES,
    bundled_chains,
    get_case,
    runnable_registry,
)
from repro.ebpf.runtime import BpfRuntime
from repro.ebpf.verifier import Verifier, VerifierError
from repro.net.irnf import FusedIrChain, IrChainNf
from repro.net.packet import Packet

from tests.ebpf.test_verifier_differential import _gen_program

SEED = 20260809
N_FUZZ_CHAINS = int(os.environ.get("REPRO_FUZZ_CHAINS", "40"))
FUZZ_POOL = int(os.environ.get("REPRO_FUZZ_PROGRAMS", "120"))


def _mk_packets(n, seed):
    rng = random.Random(seed)
    return [
        Packet(
            src_ip=rng.getrandbits(32),
            dst_ip=rng.getrandbits(32),
            src_port=rng.getrandbits(16),
            dst_port=rng.getrandbits(16),
            proto=rng.choice((6, 17)),
            size=rng.randint(64, 1500),
            timestamp_ns=rng.getrandbits(40),
        )
        for _ in range(n)
    ]


def _kfunc_state(registry):
    """Mutable closure state behind the runnable kfuncs: count-min rows
    and the PRNG position (steering tables are immutable)."""
    state = []
    for name in ("enetstl_cm_update", "enetstl_prandom_u32"):
        meta = registry.get(name)
        if meta is None or meta.impl is None:
            continue
        for cell in meta.impl.__closure__ or ():
            v = cell.cell_contents
            if isinstance(v, list):
                state.append(tuple(map(tuple, v)))
            elif isinstance(v, random.Random):
                state.append(v.getstate())
    return tuple(state)


def _observe(nf, rt, registry, actions):
    snap = rt.cycles.snapshot()
    return (
        actions,
        tuple(nf.returns),
        nf.stats.steps,
        nf.stats.checks_performed,
        nf.stats.checks_elided,
        nf.stats.insn_cycles,
        nf.stats.check_cycles,
        rt.cycles.total,
        tuple(sorted((c.name, v) for c, v in snap.by_category.items())),
        _kfunc_state(registry),
    )


def _run_chain(progs, packets, backend, elide, reg_seed=0):
    rt = BpfRuntime()
    registry = runnable_registry(reg_seed)
    nf = IrChainNf(
        rt, progs, registry=registry, elide_checks=elide, backend=backend
    )
    actions = nf.process_batch(packets)
    return _observe(nf, rt, registry, tuple(sorted(actions.items())))


# -- bundled-chain parity ---------------------------------------------------


@pytest.mark.parametrize("elide", [True, False])
@pytest.mark.parametrize("combo", bundled_chains(), ids="->".join)
def test_bundled_chain_parity(combo, elide):
    progs = [get_case(n).prog for n in combo]
    pkts = _mk_packets(64, seed=SEED + len(combo))
    interp = _run_chain(progs, pkts, "interp", elide)
    fused = _run_chain(progs, pkts, "fused", elide)
    assert interp == fused


def test_fused_matches_jit_chain_backend():
    progs = [get_case(n).prog for n in NF_CHAIN_STAGES]
    pkts = _mk_packets(64, seed=SEED)
    assert (_run_chain(progs, pkts, "jit", True)
            == _run_chain(progs, pkts, "fused", True))


def test_single_packet_process_parity():
    progs = [get_case(n).prog for n in NF_CHAIN_STAGES]
    pkts = _mk_packets(16, seed=SEED + 99)

    rt_i = BpfRuntime()
    reg_i = runnable_registry(0)
    nf_i = IrChainNf(rt_i, progs, registry=reg_i, backend="interp")
    acts_i = [nf_i.process(p) for p in pkts]

    rt_f = BpfRuntime()
    reg_f = runnable_registry(0)
    nf_f = FusedIrChain(rt_f, progs, registry=reg_f)
    acts_f = [nf_f.process(p) for p in pkts]

    assert acts_i == acts_f
    assert (_observe(nf_i, rt_i, reg_i, tuple(acts_i))
            == _observe(nf_f, rt_f, reg_f, tuple(acts_f)))


# -- specialization metadata ------------------------------------------------


def _verified(names, reg):
    verifier = Verifier(reg)
    return [verifier.verify(get_case(n).prog) for n in names]


def test_fused_chain_metadata():
    reg = runnable_registry(0)
    fc = fuse_chain(reg, _verified(NF_CHAIN_STAGES, reg))
    assert fc.stage_names == tuple(NF_CHAIN_STAGES)
    assert fc.source.startswith(
        "def _fused_nf_classifier__nf_cm_sketch__nf_maglev_pick")
    # cm_sketch's counted loop is unrolled inside the fused body too.
    assert fc.unrolled["nf_cm_sketch"] == {12: 4}
    # cm_update and maglev_pick publish inline specs; both must be
    # expanded (the fused closure calls no Python kfunc for them).
    assert fc.inlined_kfuncs == 2


def test_early_exit_emitted_between_stages_only():
    reg = runnable_registry(0)
    for combo in bundled_chains():
        fc = fuse_chain(reg, _verified(combo, reg))
        # One early-exit branch per non-final stage: a non-PASS verdict
        # skips all later stages at runtime.
        assert fc.source.count("if _rr != 2:") == len(combo) - 1


def test_inlining_can_be_disabled():
    registry = runnable_registry(0)
    fc = fuse_chain(registry, _verified(NF_CHAIN_STAGES, registry),
                    inline_kfuncs=False)
    assert fc.inlined_kfuncs == 0
    # Parity does not depend on inlining: direct-bound calls agree too.
    pkts = _mk_packets(32, seed=SEED + 7)
    progs = [get_case(n).prog for n in NF_CHAIN_STAGES]
    interp = _run_chain(progs, pkts, "interp", True)

    rt = BpfRuntime()
    nf = FusedIrChain(rt, progs, registry=registry)
    nf._fused = fc
    actions = nf.process_batch(pkts)
    assert interp == _observe(nf, rt, registry, tuple(sorted(actions.items())))


def test_fuse_rejects_bad_input():
    reg = runnable_registry(0)
    with pytest.raises(FuseError):
        fuse_chain(reg, [])
    with pytest.raises(FuseError):
        fuse_chain(reg, [get_case("nf_classifier").prog])  # not verified


# -- caching ----------------------------------------------------------------


def test_cache_hit_returns_same_object():
    reg = runnable_registry(0)
    vps = _verified(NF_CHAIN_STAGES, reg)
    before = cache_info()
    first = fused_for(reg, vps)
    second = fused_for(reg, vps)
    after = cache_info()
    assert first is second
    assert after["hits"] >= before["hits"] + 1
    assert after["misses"] == before["misses"] + 1


def test_cache_keyed_by_chain_elide_and_registry():
    reg = runnable_registry(0)
    vps = _verified(NF_CHAIN_STAGES, reg)
    base = fused_for(reg, vps)
    # Different elide mode -> different closure.
    assert fused_for(reg, vps, elide_checks=False) is not base
    # Different chain (prefix) -> different closure.
    assert fused_for(reg, vps[:2]) is not base
    # Different registry -> different cache bucket entirely.
    reg2 = runnable_registry(0)
    vps2 = _verified(NF_CHAIN_STAGES, reg2)
    assert fused_for(reg2, vps2) is not base


# -- fuzz chains ------------------------------------------------------------


def test_fuzz_chain_parity():
    """Fuse random 2–3 program chains drawn from the differential-fuzz
    generator's accept frontier and pin bit-identical behaviour against
    the interpreted chain on random traces."""
    rng = random.Random(SEED)
    verifier = Verifier(runnable_registry(SEED))
    accepted = []
    for idx in range(FUZZ_POOL):
        prog = _gen_program(rng, idx)
        try:
            accepted.append(verifier.verify(prog))
        except VerifierError:
            continue
    assert len(accepted) >= 2, "fuzz generator produced no accept pool"

    fused_runs = 0
    for i in range(N_FUZZ_CHAINS):
        chain = [rng.choice(accepted) for _ in range(rng.choice((2, 3)))]
        pkts = _mk_packets(6, seed=SEED + 1000 + i)
        reg_seed = rng.randrange(1 << 30)
        interp = _run_chain(chain, pkts, "interp", True, reg_seed=reg_seed)
        fused = _run_chain(chain, pkts, "fused", True, reg_seed=reg_seed)
        assert interp == fused, (
            f"fuzz chain {[vp.prog.name for vp in chain]} "
            f"(seed {SEED}, run {i}) diverged"
        )
        fused_runs += 1
    assert fused_runs == N_FUZZ_CHAINS
