"""Fuzz properties: the verifier's soundness contract.

1. The verifier never crashes: any syntactically valid program is
   either accepted or rejected with :class:`VerifierError`.
2. Soundness: any *accepted* program runs in the VM without a single
   runtime fault — for any packet contents.
"""

from hypothesis import given, settings, strategies as st

from repro.ebpf.insn import (
    Alu,
    Exit,
    Imm,
    Jmp,
    JmpIf,
    Load,
    Mov,
    Program,
    Store,
    R10,
)
from repro.ebpf.kfunc_meta import default_registry
from repro.ebpf.verifier import Verifier, VerifierError
from repro.ebpf.vm import Vm, VmFault

REGS = st.integers(0, 9)             # writable registers
ANY_REG = st.integers(0, 10)         # includes the frame pointer
IMM = st.integers(-64, 64)
STACK_OFF = st.sampled_from([-8, -16, -24, -32, -496, -504, -512, 0, 8])
ALU_OP = st.sampled_from(["add", "sub", "mul", "and", "or", "xor", "lsh", "rsh"])
JMP_OP = st.sampled_from(["eq", "ne", "lt", "le", "gt", "ge"])

insn_strategy = st.one_of(
    st.builds(Mov, dst=REGS, src=st.one_of(ANY_REG, st.builds(Imm, value=IMM))),
    st.builds(
        Alu, op=ALU_OP, dst=REGS,
        src=st.one_of(ANY_REG, st.builds(Imm, value=IMM)),
    ),
    st.builds(Load, dst=REGS, base=ANY_REG, off=STACK_OFF),
    st.builds(
        Store, base=ANY_REG, off=STACK_OFF,
        src=st.one_of(ANY_REG, st.builds(Imm, value=IMM)),
    ),
    st.builds(
        JmpIf, op=JMP_OP, lhs=ANY_REG,
        rhs=st.one_of(ANY_REG, st.builds(Imm, value=IMM)),
        target=st.integers(0, 30),
    ),
    st.builds(Jmp, target=st.integers(0, 30)),
)


def _make_program(insns):
    """Clamp jump targets forward + in range, then append an exit."""
    body = list(insns) + [Mov(0, Imm(0)), Exit()]
    n = len(body)
    fixed = []
    for i, insn in enumerate(body):
        if isinstance(insn, Jmp):
            target = min(max(insn.target, i + 1), n - 1)
            insn = Jmp(target)
        elif isinstance(insn, JmpIf):
            target = min(max(insn.target, i + 1), n - 1)
            insn = JmpIf(insn.op, insn.lhs, insn.rhs, target)
        fixed.append(insn)
    return Program(fixed, name="fuzz")


@settings(max_examples=300, deadline=None)
@given(st.lists(insn_strategy, max_size=24))
def test_verifier_never_crashes(insns):
    prog = _make_program(insns)
    try:
        Verifier(default_registry()).verify(prog)
    except VerifierError:
        pass   # rejection is a valid outcome; crashing is not


@settings(max_examples=300, deadline=None)
@given(
    st.lists(insn_strategy, max_size=24),
    st.binary(min_size=0, max_size=64),
)
def test_accepted_programs_never_fault(insns, packet):
    prog = _make_program(insns)
    registry = default_registry()
    try:
        Verifier(registry).verify(prog)
    except VerifierError:
        return
    # Accepted: must run clean on any packet, and terminate.
    result = Vm(registry, packet=packet).run(prog, max_steps=500)
    assert isinstance(result, int)
