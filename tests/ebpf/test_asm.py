"""Round-trip tests for the textual IR: assemble(disassemble(p)) == p.

``test_one_of_each_opcode`` is the exhaustive contract: one instance
of every instruction kind, every ALU op, every jump condition, and
both immediate and register operand forms, through the printer and
back.  Any new opcode that reaches disasm without an asm counterpart
fails here.
"""

import pytest

from repro.ebpf.asm import AsmError, assemble, parse_insn
from repro.ebpf.disasm import disassemble, disassemble_one
from repro.ebpf.insn import (
    ALU_OPS,
    Alu,
    Call,
    Exit,
    Imm,
    JMP_OPS,
    Jmp,
    JmpIf,
    Load,
    Mov,
    Program,
    Store,
    R0,
    R1,
    R2,
    R10,
)
from repro.ebpf.progs import bundled_cases


def _one_of_each():
    """One instance of every opcode / operand-form combination."""
    insns = [
        Mov(R0, Imm(42)),
        Mov(R0, Imm(-7)),
        Mov(R1, R2),
        Load(R0, R10, -8),
        Load(R2, R1, 0),
        Store(R10, -16, Imm(7)),
        Store(R10, -24, R0),
        Call("bpf_get_prandom_u32"),
        Jmp(0),                       # target patched below
        Exit(),
    ]
    for op in sorted(ALU_OPS):
        insns.append(Alu(op, R0, Imm(3)))
        insns.append(Alu(op, R0, R2))
    for op in sorted(JMP_OPS):
        insns.append(JmpIf(op, R0, Imm(5), 0))
        insns.append(JmpIf(op, R0, R2, 0))
    insns.append(Exit())
    end = len(insns) - 1
    for i, insn in enumerate(insns):
        if isinstance(insn, Jmp):
            insns[i] = Jmp(end)
        elif isinstance(insn, JmpIf):
            insns[i] = JmpIf(insn.op, insn.lhs, insn.rhs, end)
    return insns


def test_one_of_each_opcode_round_trips():
    prog = Program(_one_of_each(), name="everything")
    text = disassemble(prog)
    back = assemble(text, name="everything")
    assert list(back) == list(prog)


@pytest.mark.parametrize("case", bundled_cases(), ids=lambda c: c.name)
def test_bundled_programs_round_trip(case):
    text = disassemble(case.prog)
    back = assemble(text, name=case.name)
    assert list(back) == list(case.prog)


def test_single_insn_round_trips():
    for insn in _one_of_each():
        assert parse_insn(disassemble_one(insn)) == insn


def test_comments_blanks_and_index_prefixes_ignored():
    prog = assemble(
        """
        ; a leading comment
        0: r0 = 1          ; trailing comment
           r0 += 2

        exit
        """
    )
    assert list(prog) == [Mov(R0, Imm(1)), Alu("add", R0, Imm(2)), Exit()]


def test_hex_immediates():
    prog = assemble("r0 = 0xff\nexit")
    assert prog[0] == Mov(R0, Imm(0xFF))


def test_parse_error_carries_line_number():
    with pytest.raises(AsmError) as exc:
        assemble("r0 = 1\nr0 ?= 2\nexit")
    assert exc.value.lineno == 2
    assert "cannot parse" in str(exc.value)


def test_empty_input_rejected():
    with pytest.raises(AsmError, match="no instructions"):
        assemble("; nothing but comments\n")


def test_bad_jump_target_rejected():
    with pytest.raises(AsmError):
        assemble("goto 99\nexit")
