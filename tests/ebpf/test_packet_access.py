"""Packet-data access: the XDP data/data_end bounds-check pattern."""

import pytest

from repro.ebpf.insn import (
    Alu,
    Call,
    Exit,
    Imm,
    Jmp,
    JmpIf,
    Load,
    Mov,
    Program,
    Store,
    R0,
    R1,
    R2,
    R3,
    R6,
    R10,
)
from repro.ebpf.kfunc_meta import default_registry
from repro.ebpf.verifier import Verifier, VerifierError
from repro.ebpf.vm import Vm, VmFault


@pytest.fixture
def verifier():
    return Verifier(default_registry())


def verify(verifier, *insns):
    return verifier.verify(Program(list(insns), name="pkt"))


def reject(verifier, *insns, match):
    with pytest.raises(VerifierError, match=match):
        verify(verifier, *insns)


def checked_read_prog(check_len=16, read_off=0):
    """The canonical XDP prologue: bound-check then read."""
    return [
        Load(R2, R1, 0),               # r2 = ctx->data
        Load(R3, R1, 8),               # r3 = ctx->data_end
        Mov(R6, R2),
        Alu("add", R6, Imm(check_len)),
        JmpIf("gt", R6, R3, 7),        # if data+len > end: drop
        Load(R0, R2, read_off),        # in-bounds read
        Exit(),
        Mov(R0, Imm(0)),
        Exit(),
    ]


class TestVerifierPacketAccess:
    def test_checked_read_accepted(self, verifier):
        verify(verifier, *checked_read_prog(16, 0))
        verify(verifier, *checked_read_prog(16, 8))

    def test_unchecked_read_rejected(self, verifier):
        reject(
            verifier,
            Load(R2, R1, 0),
            Load(R0, R2, 0),
            Exit(),
            match="missing data_end check",
        )

    def test_read_past_checked_length_rejected(self, verifier):
        # 16 bytes proven, 8-byte read at offset 12 needs 20.
        reject(verifier, *checked_read_prog(16, 12),
               match="out of bounds")

    def test_check_does_not_leak_to_wrong_branch(self, verifier):
        """The taken (out-of-bounds) branch must not be able to read."""
        reject(
            verifier,
            Load(R2, R1, 0),
            Load(R3, R1, 8),
            Mov(R6, R2),
            Alu("add", R6, Imm(16)),
            JmpIf("gt", R6, R3, 7),
            Mov(R0, Imm(0)),
            Exit(),
            Load(R0, R2, 0),    # this is the FAIL branch: no proof here
            Exit(),
            match="missing data_end check",
        )

    def test_le_check_on_taken_branch(self, verifier):
        verify(
            verifier,
            Load(R2, R1, 0),
            Load(R3, R1, 8),
            Mov(R6, R2),
            Alu("add", R6, Imm(8)),
            JmpIf("le", R6, R3, 7),    # taken branch is the proven one
            Mov(R0, Imm(0)),
            Exit(),
            Load(R0, R2, 0),
            Exit(),
        )

    def test_data_end_dereference_rejected(self, verifier):
        reject(
            verifier,
            Load(R3, R1, 8),
            Load(R0, R3, 0),
            Exit(),
            match="cannot dereference",
        )

    def test_data_end_arithmetic_rejected(self, verifier):
        reject(
            verifier,
            Load(R3, R1, 8),
            Alu("add", R3, Imm(8)),
            Mov(R0, Imm(0)),
            Exit(),
            match="data_end",
        )

    def test_eq_check_against_data_end_rejected(self, verifier):
        reject(
            verifier,
            Load(R2, R1, 0),
            Load(R3, R1, 8),
            JmpIf("eq", R2, R3, 4),
            Mov(R0, Imm(0)),
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
            match="lt/le/gt/ge",
        )

    def test_packet_write_after_check(self, verifier):
        verify(
            verifier,
            Load(R2, R1, 0),
            Load(R3, R1, 8),
            Mov(R6, R2),
            Alu("add", R6, Imm(8)),
            JmpIf("gt", R6, R3, 7),
            Store(R2, 0, Imm(0xFF)),   # rewrite the first 8 bytes
            Jmp(7),
            Mov(R0, Imm(0)),
            Exit(),
        )

    def test_checks_accumulate(self, verifier):
        """A longer proof extends, never shrinks, the accessible range."""
        verify(
            verifier,
            Load(R2, R1, 0),
            Load(R3, R1, 8),
            Mov(R6, R2),
            Alu("add", R6, Imm(8)),
            JmpIf("gt", R6, R3, 11),
            Mov(R6, R2),
            Alu("add", R6, Imm(24)),
            JmpIf("gt", R6, R3, 11),
            Load(R0, R2, 16),          # needs the 24-byte proof
            Exit(),
            Jmp(11),
            Mov(R0, Imm(0)),
            Exit(),
        )


class TestVmPacketAccess:
    def _run(self, prog_insns, packet: bytes):
        prog = Program(prog_insns, name="pkt")
        Verifier(default_registry()).verify(prog)
        return Vm(default_registry(), packet=packet).run(prog)

    def test_reads_real_packet_bytes(self):
        packet = (0xDEADBEEFCAFEF00D).to_bytes(8, "little") + bytes(8)
        assert self._run(checked_read_prog(16, 0), packet) == 0xDEADBEEFCAFEF00D

    def test_short_packet_takes_drop_branch(self):
        result = self._run(checked_read_prog(16, 0), bytes(8))
        assert result == 0   # bound check fails -> drop path

    def test_exact_length_packet_passes(self):
        packet = bytes(range(16))
        result = self._run(checked_read_prog(16, 8), packet)
        assert result == int.from_bytes(bytes(range(8, 16)), "little")

    def test_unverified_oob_read_faults(self):
        prog = Program(
            [Load(R2, R1, 0), Load(R0, R2, 64), Exit()], name="bad"
        )
        with pytest.raises(VmFault, match="packet access out of bounds"):
            Vm(default_registry(), packet=bytes(16)).run(prog)
