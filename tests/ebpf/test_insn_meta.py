"""Tests for the IR validation and kfunc metadata rules."""

import pytest

from repro.ebpf.insn import (
    Alu,
    Exit,
    Imm,
    Jmp,
    JmpIf,
    Load,
    Mov,
    Program,
    Store,
    R0,
    R10,
)
from repro.ebpf.kfunc_meta import (
    ARG_CONST,
    ARG_KPTR,
    ARG_SCALAR,
    KF_ACQUIRE,
    KF_RELEASE,
    KF_RET_NULL,
    KfuncMeta,
    KfuncRegistry,
    RET_KPTR,
    RET_SCALAR,
    VALID_PROG_TYPES,
    default_registry,
)


class TestInsnValidation:
    def test_invalid_register(self):
        with pytest.raises(ValueError):
            Mov(99, Imm(0))

    def test_r10_not_writable(self):
        with pytest.raises(ValueError):
            Mov(R10, Imm(0))
        with pytest.raises(ValueError):
            Alu("add", R10, Imm(8))

    def test_unknown_alu_op(self):
        with pytest.raises(ValueError):
            Alu("nand", R0, Imm(1))

    def test_unknown_jmp_op(self):
        with pytest.raises(ValueError):
            JmpIf("spaceship", R0, Imm(1), 0)

    def test_program_rejects_invalid_target(self):
        with pytest.raises(ValueError, match="invalid target"):
            Program([Jmp(5), Exit()])

    def test_program_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            Program([])

    def test_program_iteration(self):
        prog = Program([Mov(R0, Imm(0)), Exit()])
        assert len(prog) == 2
        assert isinstance(prog[1], Exit)


class TestKfuncMeta:
    def test_unknown_flag_rejected(self):
        with pytest.raises(ValueError, match="unknown flags"):
            KfuncMeta(name="f", flags=frozenset({"KF_BOGUS"}))

    def test_unknown_arg_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown arg kind"):
            KfuncMeta(name="f", args=("banana",))

    def test_too_many_args_rejected(self):
        with pytest.raises(ValueError, match="at most 5"):
            KfuncMeta(name="f", args=(ARG_SCALAR,) * 6)

    def test_acquire_requires_kptr_return(self):
        with pytest.raises(ValueError, match="kptr return"):
            KfuncMeta(name="f", ret=RET_SCALAR, flags=frozenset({KF_ACQUIRE}))

    def test_release_requires_kptr_release_arg(self):
        with pytest.raises(ValueError, match="kptr release argument"):
            KfuncMeta(name="f", args=(ARG_SCALAR,), flags=frozenset({KF_RELEASE}))
        with pytest.raises(ValueError, match="out of range"):
            KfuncMeta(
                name="f",
                args=(ARG_KPTR,),
                flags=frozenset({KF_RELEASE}),
                release_arg=3,
            )
        # Correct shapes are accepted.
        KfuncMeta(name="f", args=(ARG_KPTR,), flags=frozenset({KF_RELEASE}))
        KfuncMeta(
            name="g",
            args=(ARG_SCALAR, ARG_KPTR),
            flags=frozenset({KF_RELEASE}),
            release_arg=1,
        )

    def test_flag_properties(self):
        meta = KfuncMeta(
            name="f", ret=RET_KPTR, flags=frozenset({KF_ACQUIRE, KF_RET_NULL})
        )
        assert meta.acquires and meta.may_return_null and not meta.releases


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        reg = KfuncRegistry()
        reg.define("f")
        with pytest.raises(ValueError, match="already registered"):
            reg.define("f")

    def test_lookup(self):
        reg = KfuncRegistry()
        meta = reg.define("f", args=(ARG_SCALAR,))
        assert reg.get("f") is meta
        assert "f" in reg
        assert reg.get("g") is None

    def test_default_registry_contents(self):
        reg = default_registry()
        assert "bpf_get_prandom_u32" in reg
        assert "bpf_map_lookup_elem" in reg
        assert reg.get("bpf_map_lookup_elem").may_return_null
        assert reg.get("bpf_obj_new").acquires
        assert reg.get("bpf_obj_drop").releases


class TestEnetstlRegistry:
    def test_full_api_surface_registered(self):
        from repro.core.kfunc import enetstl_registry

        reg = enetstl_registry()
        for name in (
            "node_alloc",
            "set_owner",
            "node_connect",
            "get_next",
            "node_release",
            "bpf_ffs64",
            "find_simd",
            "hw_hash_crc",
            "hash_simd_cnt",
            "bktlist_alloc",
            "bktlist_insert_front",
            "rpool_draw",
            "geo_rpool_alloc",
        ):
            assert name in reg, name

    def test_memory_wrapper_pairing_flags(self):
        from repro.core.kfunc import enetstl_registry

        reg = enetstl_registry()
        assert reg.get("node_alloc").acquires
        assert reg.get("node_alloc").may_return_null
        assert reg.get("get_next").acquires
        assert reg.get("get_next").may_return_null
        assert reg.get("node_release").releases

    def test_prog_type_scoping(self):
        from repro.core.kfunc import enetstl_registry

        reg = enetstl_registry()
        assert reg.get("node_alloc").prog_types == frozenset({"xdp", "tc"})


class TestRegistrationValidation:
    """Metadata constraints enforced when a kfunc is registered —
    malformed metas never reach the verifier."""

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty string"):
            KfuncMeta(name="")

    def test_release_arg_without_release_flag_rejected(self):
        with pytest.raises(ValueError, match="without KF_RELEASE"):
            KfuncMeta(name="f", args=(ARG_SCALAR, ARG_KPTR), release_arg=1)

    def test_size_arg_requires_kptr_return(self):
        with pytest.raises(ValueError, match="kptr return"):
            KfuncMeta(name="f", args=(ARG_CONST,), ret=RET_SCALAR, size_arg=0)

    def test_size_arg_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            KfuncMeta(name="f", args=(ARG_CONST,), ret=RET_KPTR, size_arg=2)

    def test_size_arg_must_be_const(self):
        with pytest.raises(ValueError, match="ARG_CONST"):
            KfuncMeta(name="f", args=(ARG_SCALAR,), ret=RET_KPTR, size_arg=0)

    def test_size_arg_valid_shape_accepted(self):
        meta = KfuncMeta(name="f", args=(ARG_CONST,), ret=RET_KPTR, size_arg=0)
        assert meta.size_arg == 0

    def test_empty_prog_types_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            KfuncMeta(name="f", prog_types=frozenset())

    def test_unknown_prog_type_rejected(self):
        with pytest.raises(ValueError, match="unknown program types"):
            KfuncMeta(name="f", prog_types=frozenset({"quantum_filter"}))

    def test_known_prog_types_accepted(self):
        meta = KfuncMeta(name="f", prog_types=frozenset(VALID_PROG_TYPES))
        assert meta.prog_types == VALID_PROG_TYPES

    def test_non_callable_impl_rejected(self):
        with pytest.raises(ValueError, match="callable"):
            KfuncMeta(name="f", impl=42)

    def test_obj_new_declares_size_arg(self):
        assert default_registry().get("bpf_obj_new").size_arg == 0
