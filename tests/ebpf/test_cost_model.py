"""Unit tests for the cycle-cost model."""

import pytest

from repro.ebpf.cost_model import (
    CPU_HZ,
    Category,
    CostModel,
    Cycles,
    DEFAULT_COSTS,
    ExecMode,
    OBSERVATION_CATEGORIES,
    gap,
    improvement,
    processing_time_ns,
    simd_batches,
    throughput_pps,
)


class TestCycles:
    def test_starts_at_zero(self):
        c = Cycles()
        assert c.total == 0
        assert c.breakdown() == {}

    def test_charge_accumulates(self):
        c = Cycles()
        c.charge(10, Category.MULTIHASH)
        c.charge(5, Category.MULTIHASH)
        c.charge(3, Category.PARSE)
        assert c.total == 18
        assert c.breakdown()[Category.MULTIHASH] == 15
        assert c.breakdown()[Category.PARSE] == 3

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            Cycles().charge(-1)

    def test_zero_charge_allowed(self):
        c = Cycles()
        c.charge(0, Category.OTHER)
        assert c.total == 0

    def test_share(self):
        c = Cycles()
        c.charge(30, Category.MULTIHASH)
        c.charge(70, Category.FRAMEWORK)
        assert c.share(Category.MULTIHASH) == pytest.approx(0.3)
        assert c.share(Category.MULTIHASH, Category.FRAMEWORK) == pytest.approx(1.0)

    def test_share_empty_counter(self):
        assert Cycles().share(Category.MULTIHASH) == 0.0

    def test_reset(self):
        c = Cycles()
        c.charge(10, Category.OTHER)
        c.reset()
        assert c.total == 0
        assert c.breakdown() == {}

    def test_snapshot_delta(self):
        c = Cycles()
        c.charge(10, Category.PARSE)
        before = c.snapshot()
        c.charge(7, Category.PARSE)
        c.charge(5, Category.RANDOM)
        delta = before.delta(c.snapshot())
        assert delta.total == 12
        assert delta.by_category == {Category.PARSE: 7, Category.RANDOM: 5}

    def test_snapshot_delta_drops_zero_categories(self):
        c = Cycles()
        c.charge(10, Category.PARSE)
        before = c.snapshot()
        c.charge(4, Category.RANDOM)
        delta = before.delta(c.snapshot())
        assert Category.PARSE not in delta.by_category


class TestCostModel:
    def test_defaults_positive(self):
        for name, value in DEFAULT_COSTS.named().items():
            assert value > 0, f"{name} must be positive"

    def test_scaled_overrides(self):
        scaled = DEFAULT_COSTS.scaled(hash_scalar=99)
        assert scaled.hash_scalar == 99
        assert scaled.map_lookup == DEFAULT_COSTS.map_lookup
        # The original is untouched (frozen dataclass semantics).
        assert DEFAULT_COSTS.hash_scalar != 99

    def test_ordering_invariants(self):
        """The asymmetries the paper's analysis depends on."""
        c = DEFAULT_COSTS
        assert c.kfunc_call < c.helper_call
        assert c.kernel_call < c.kfunc_call
        assert c.hash_crc_hw < c.hash_scalar
        assert c.ffs_hw < c.ffs_soft
        assert c.popcnt_hw < c.popcnt_soft
        assert c.rpool_draw < c.prandom_helper
        assert c.get_next_kernel < c.get_next_kfunc
        assert c.percpu_array_lookup < c.map_lookup
        # One SIMD batch beats 8 scalar compares.
        assert c.simd_load + c.cmp_simd_batch < 8 * c.cmp_scalar_per_item
        # One 8-lane SIMD hash batch beats 8 scalar hashes.
        assert (
            c.hash_simd_setup + 8 * c.hash_simd_lane < 8 * c.hash_scalar
        )


class TestDerivedMetrics:
    def test_throughput(self):
        assert throughput_pps(220) == pytest.approx(10_000_000)
        assert throughput_pps(CPU_HZ) == pytest.approx(1.0)

    def test_throughput_invalid(self):
        with pytest.raises(ValueError):
            throughput_pps(0)

    def test_processing_time(self):
        assert processing_time_ns(2200) == pytest.approx(1000.0)

    def test_improvement(self):
        assert improvement(200, 100) == pytest.approx(1.0)
        assert improvement(150, 100) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            improvement(0, 100)

    def test_gap(self):
        assert gap(100, 125) == pytest.approx(0.2)
        assert gap(100, 100) == pytest.approx(0.0)
        with pytest.raises(ValueError):
            gap(100, 0)

    def test_simd_batches(self):
        assert simd_batches(0) == 0
        assert simd_batches(1) == 1
        assert simd_batches(8) == 1
        assert simd_batches(9) == 2
        assert simd_batches(64, lane_width=8) == 8
        with pytest.raises(ValueError):
            simd_batches(-1)


def test_observation_categories_are_the_six_behaviors():
    assert len(OBSERVATION_CATEGORIES) == 6
    assert Category.PARSE not in OBSERVATION_CATEGORIES
    assert Category.FRAMEWORK not in OBSERVATION_CATEGORIES


def test_exec_mode_labels():
    assert ExecMode.PURE_EBPF.label == "eBPF"
    assert ExecMode.KERNEL.label == "Kernel"
    assert ExecMode.ENETSTL.label == "eNetSTL"
