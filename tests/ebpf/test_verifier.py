"""Verifier tests: the kfunc/kptr safety rules of §4.1 and §4.4.

Each test builds a small IR program and asserts the verifier's verdict.
Rejection tests check the error message names the right violation.
"""

import pytest

from repro.ebpf.insn import (
    Alu,
    Call,
    Exit,
    Imm,
    Jmp,
    JmpIf,
    Load,
    Mov,
    Program,
    Store,
    R0,
    R1,
    R2,
    R3,
    R6,
    R7,
    R10,
)
from repro.ebpf.kfunc_meta import (
    ARG_CONST,
    ARG_KPTR,
    ARG_PTR,
    ARG_SCALAR,
    KF_ACQUIRE,
    KF_RELEASE,
    KF_RET_NULL,
    default_registry,
)
from repro.ebpf.verifier import Verifier, VerifierError


@pytest.fixture
def registry():
    return default_registry()


@pytest.fixture
def verifier(registry):
    return Verifier(registry)


def verify(verifier, *insns, name="t"):
    return verifier.verify(Program(list(insns), name=name))


def reject(verifier, *insns, match):
    with pytest.raises(VerifierError, match=match):
        verify(verifier, *insns)


class TestBasics:
    def test_trivial_program(self, verifier):
        verify(verifier, Mov(R0, Imm(0)), Exit())

    def test_arithmetic(self, verifier):
        verify(
            verifier,
            Mov(R0, Imm(6)),
            Alu("mul", R0, Imm(7)),
            Alu("add", R0, Imm(1)),
            Exit(),
        )

    def test_exit_requires_scalar_r0(self, verifier):
        reject(verifier, Mov(R0, Imm(0)), Mov(R2, R10), Mov(R0, R2), Exit(),
               match="scalar return")

    def test_exit_with_uninit_r0_rejected(self, verifier):
        # r0 starts NOT_INIT; returning it directly is invalid.
        reject(verifier, Exit(), match="scalar return")

    def test_uninitialized_register_read(self, verifier):
        reject(verifier, Mov(R0, R7), Exit(), match="uninitialized register")

    def test_fallthrough_off_end(self, verifier):
        reject(verifier, Mov(R0, Imm(0)), match="fell off the end")


class TestTermination:
    def test_back_edge_rejected(self, verifier):
        reject(
            verifier,
            Mov(R0, Imm(0)),
            Jmp(0),
            Exit(),
            match="back-edge",
        )

    def test_conditional_back_edge_rejected(self, verifier):
        reject(
            verifier,
            Mov(R0, Imm(0)),
            JmpIf("ne", R0, Imm(5), 1),
            Exit(),
            match="back-edge",
        )

    def test_forward_jump_ok(self, verifier):
        verify(
            verifier,
            Mov(R0, Imm(0)),
            Jmp(3),
            Mov(R0, Imm(1)),   # skipped
            Exit(),
        )

    def test_division_by_zero_immediate(self, verifier):
        reject(verifier, Mov(R0, Imm(1)), Alu("div", R0, Imm(0)), Exit(),
               match="division by zero")

    def test_division_by_unknown_scalar(self, verifier, registry):
        reject(
            verifier,
            Call("bpf_get_prandom_u32"),
            Mov(R6, R0),
            Mov(R0, Imm(8)),
            Alu("div", R0, R6),
            Exit(),
            match="division by zero",
        )

    def test_division_by_known_nonzero_ok(self, verifier):
        verify(verifier, Mov(R0, Imm(8)), Alu("div", R0, Imm(2)), Exit())

    def test_modulo_by_zero(self, verifier):
        reject(verifier, Mov(R0, Imm(1)), Alu("mod", R0, Imm(0)), Exit(),
               match="division by zero|modulo")

    def test_oversized_shift_rejected(self, verifier):
        reject(verifier, Mov(R0, Imm(1)), Alu("lsh", R0, Imm(64)), Exit(),
               match="shift amount")


class TestStackSafety:
    def test_store_then_load(self, verifier):
        verify(
            verifier,
            Mov(R2, R10),
            Store(R2, -8, Imm(42)),
            Load(R0, R2, -8),
            Exit(),
        )

    def test_read_uninitialized_stack(self, verifier):
        reject(verifier, Load(R0, R10, -8), Exit(),
               match="uninitialized stack")

    def test_out_of_bounds_below(self, verifier):
        reject(verifier, Store(R10, -520, Imm(1)), Mov(R0, Imm(0)), Exit(),
               match="out of bounds")

    def test_out_of_bounds_above(self, verifier):
        reject(verifier, Store(R10, 0, Imm(1)), Mov(R0, Imm(0)), Exit(),
               match="out of bounds")

    def test_misaligned_access(self, verifier):
        reject(verifier, Store(R10, -9, Imm(1)), Mov(R0, Imm(0)), Exit(),
               match="misaligned")

    def test_pointer_arithmetic_tracks_offset(self, verifier):
        verify(
            verifier,
            Mov(R2, R10),
            Alu("sub", R2, Imm(16)),
            Store(R2, 0, Imm(1)),    # fp-16: fine
            Load(R0, R2, 0),
            Exit(),
        )

    def test_pointer_arithmetic_with_unknown_scalar(self, verifier):
        reject(
            verifier,
            Call("bpf_get_prandom_u32"),
            Mov(R2, R10),
            Alu("add", R2, R0),
            Mov(R0, Imm(0)),
            Exit(),
            match="unknown scalar",
        )

    def test_pointer_multiplication_rejected(self, verifier):
        reject(verifier, Mov(R2, R10), Alu("mul", R2, Imm(2)),
               Mov(R0, Imm(0)), Exit(), match="invalid mul on pointer")

    def test_spilled_pointer_restored(self, verifier):
        verify(
            verifier,
            Mov(R2, R10),
            Store(R10, -8, R2),       # spill
            Load(R3, R10, -8),        # fill
            Store(R3, -16, Imm(7)),   # use as stack pointer again
            Mov(R0, Imm(0)),
            Exit(),
        )


class TestNullChecks:
    """KF_RET_NULL: the verifier forces a NULL check before use."""

    def test_deref_without_null_check_rejected(self, verifier):
        reject(
            verifier,
            Mov(R1, Imm(1)),
            Mov(R2, R10),
            Call("bpf_map_lookup_elem"),
            Load(R0, R0, 0),
            Exit(),
            match="NULL",
        )

    def test_deref_after_ne_check_ok(self, verifier):
        verify(
            verifier,
            Mov(R1, Imm(1)),
            Mov(R2, R10),
            Call("bpf_map_lookup_elem"),
            JmpIf("ne", R0, Imm(0), 6),
            Mov(R0, Imm(0)),
            Exit(),
            Load(R0, R0, 0),   # checked branch: deref fine
            Exit(),
        )

    def test_deref_after_eq_check_ok(self, verifier):
        verify(
            verifier,
            Mov(R1, Imm(1)),
            Mov(R2, R10),
            Call("bpf_map_lookup_elem"),
            JmpIf("eq", R0, Imm(0), 6),
            Load(R0, R0, 0),   # fallthrough is the non-null branch
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
        )

    def test_null_branch_deref_rejected(self, verifier):
        reject(
            verifier,
            Mov(R1, Imm(1)),
            Mov(R2, R10),
            Call("bpf_map_lookup_elem"),
            JmpIf("ne", R0, Imm(0), 5),
            Load(R0, R0, 0),   # NULL branch: r0 is scalar 0 here
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
            match="non-pointer",
        )

    def test_pointer_compared_to_nonzero_rejected(self, verifier):
        reject(
            verifier,
            Mov(R1, Imm(1)),
            Mov(R2, R10),
            Call("bpf_map_lookup_elem"),
            JmpIf("ne", R0, Imm(7), 5),
            Mov(R0, Imm(0)),
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
            match="pointer comparison",
        )

    def test_kernel_memory_out_of_bounds(self, verifier):
        reject(
            verifier,
            Mov(R1, Imm(1)),
            Mov(R2, R10),
            Call("bpf_map_lookup_elem"),
            JmpIf("eq", R0, Imm(0), 6),
            Load(R0, R0, 4096),   # way past the region
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
            match="out of bounds",
        )


class TestAcquireRelease:
    """KF_ACQUIRE/KF_RELEASE pairing: leaks and double frees."""

    def _alloc(self):
        # bpf_obj_new(const size) -> acquired maybe-null kptr
        return [Mov(R1, Imm(64)), Call("bpf_obj_new")]

    def test_leak_rejected(self, verifier):
        reject(
            verifier,
            *self._alloc(),
            JmpIf("eq", R0, Imm(0), 3),
            Mov(R0, Imm(0)),   # non-null branch: leaks the object
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
            match="unreleased reference",
        )

    def test_alloc_then_release_ok(self, verifier):
        verify(
            verifier,
            *self._alloc(),
            JmpIf("eq", R0, Imm(0), 6),
            Mov(R1, R0),
            Call("bpf_obj_drop"),
            Mov(R0, Imm(0)),
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
        )

    def test_release_without_acquire_rejected(self, verifier):
        reject(
            verifier,
            Mov(R1, Imm(1)),
            Mov(R2, R10),
            Call("bpf_map_lookup_elem"),   # kptr but NOT acquired
            JmpIf("eq", R0, Imm(0), 7),
            Mov(R1, R0),
            Call("bpf_obj_drop"),
            Mov(R0, Imm(0)),
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
            match="not acquired|double free",
        )

    def test_double_release_rejected(self, verifier):
        reject(
            verifier,
            *self._alloc(),
            JmpIf("eq", R0, Imm(0), 9),
            Mov(R6, R0),
            Mov(R1, R6),
            Call("bpf_obj_drop"),
            Mov(R1, R6),            # r6 was invalidated by the release
            Call("bpf_obj_drop"),
            Mov(R0, Imm(0)),
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
            match="uninitialized",
        )

    def test_use_after_release_rejected(self, verifier):
        reject(
            verifier,
            *self._alloc(),
            JmpIf("eq", R0, Imm(0), 8),
            Mov(R6, R0),
            Mov(R1, R6),
            Call("bpf_obj_drop"),
            Load(R0, R6, 0),    # use after free: r6 invalidated
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
            match="uninitialized",
        )

    def test_release_of_maybe_null_rejected(self, verifier):
        reject(
            verifier,
            *self._alloc(),
            Mov(R1, R0),          # no null check first
            Call("bpf_obj_drop"),
            Mov(R0, Imm(0)),
            Exit(),
            match="may be NULL",
        )

    def test_null_branch_has_no_leak(self, verifier):
        """An allocation that returned NULL never materialized."""
        verify(
            verifier,
            *self._alloc(),
            JmpIf("ne", R0, Imm(0), 5),
            Mov(R0, Imm(0)),
            Exit(),
            Mov(R1, R0),
            Call("bpf_obj_drop"),
            Mov(R0, Imm(0)),
            Exit(),
        )


class TestKptrXchg:
    """The third kptr rule: persisting via bpf_kptr_xchg ends the
    program's ownership; the returned (old) pointer is a fresh
    acquired, maybe-null kptr."""

    def _xchg_prog_prefix(self):
        return [
            Mov(R1, Imm(64)),
            Call("bpf_obj_new"),           # acquired, maybe-null
            JmpIf("eq", R0, Imm(0), 99),   # placeholder target, fixed below
        ]

    def test_persist_then_handle_old_pointer(self, verifier):
        verify(
            verifier,
            Mov(R1, Imm(64)),
            Call("bpf_obj_new"),
            JmpIf("eq", R0, Imm(0), 12),
            Mov(R2, R0),                  # the new object
            Mov(R1, R10),                 # map-value slot (modeled)
            Call("bpf_kptr_xchg"),        # releases r2's ref, acquires old
            JmpIf("eq", R0, Imm(0), 10),
            Mov(R1, R0),
            Call("bpf_obj_drop"),         # release the old pointer
            Jmp(10),
            Mov(R0, Imm(0)),
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
        )

    def test_ignoring_old_pointer_is_a_leak(self, verifier):
        reject(
            verifier,
            Mov(R1, Imm(64)),
            Call("bpf_obj_new"),
            JmpIf("eq", R0, Imm(0), 8),
            Mov(R2, R0),
            Mov(R1, R10),
            Call("bpf_kptr_xchg"),
            Mov(R0, Imm(0)),              # old pointer dropped on floor
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
            match="unreleased reference",
        )

    def test_xchg_consumes_new_pointer(self, verifier):
        """After the xchg, the persisted pointer is invalidated."""
        reject(
            verifier,
            Mov(R1, Imm(64)),
            Call("bpf_obj_new"),
            JmpIf("eq", R0, Imm(0), 12),
            Mov(R6, R0),
            Mov(R2, R6),
            Mov(R1, R10),
            Call("bpf_kptr_xchg"),
            JmpIf("eq", R0, Imm(0), 10),
            Mov(R1, R0),
            Call("bpf_obj_drop"),
            Load(R0, R6, 0),              # r6 was invalidated by the xchg
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
            match="uninitialized",
        )


class TestCallValidation:
    def test_unknown_kfunc(self, verifier):
        reject(verifier, Call("not_a_kfunc"), Exit(), match="unknown kfunc")

    def test_arg_type_scalar_required(self, verifier, registry):
        registry.define("wants_scalar", args=(ARG_SCALAR,))
        reject(
            verifier,
            Mov(R1, R10),
            Call("wants_scalar"),
            Exit(),
            match="must be a scalar",
        )

    def test_arg_type_const_required(self, verifier, registry):
        registry.define("wants_const", args=(ARG_CONST,))
        reject(
            verifier,
            Call("bpf_get_prandom_u32"),
            Mov(R1, R0),
            Call("wants_const"),
            Exit(),
            match="known constant",
        )

    def test_const_arg_satisfied_by_imm(self, verifier, registry):
        registry.define("wants_const2", args=(ARG_CONST,))
        verify(
            verifier,
            Mov(R1, Imm(16)),
            Call("wants_const2"),
            Mov(R0, Imm(0)),
            Exit(),
        )

    def test_arg_uninitialized(self, verifier, registry):
        registry.define("wants_two", args=(ARG_SCALAR, ARG_SCALAR))
        reject(
            verifier,
            Mov(R1, Imm(1)),
            Call("wants_two"),
            Exit(),
            match="uninitialized",
        )

    def test_caller_saved_clobbered(self, verifier):
        reject(
            verifier,
            Mov(R2, Imm(5)),
            Call("bpf_get_prandom_u32"),
            Mov(R0, R2),   # r2 clobbered by the call
            Exit(),
            match="uninitialized",
        )

    def test_callee_saved_survive(self, verifier):
        verify(
            verifier,
            Mov(R6, Imm(5)),
            Call("bpf_get_prandom_u32"),
            Mov(R0, R6),
            Exit(),
        )

    def test_prog_type_restriction(self, registry):
        registry.define("xdp_only", prog_types=("xdp",))
        ok = Verifier(registry, prog_type="xdp")
        verify(ok, Call("xdp_only"), Exit())
        bad = Verifier(registry, prog_type="kprobe")
        reject(bad, Call("xdp_only"), Exit(), match="not allowed")

    def test_pointer_store_into_kernel_memory_rejected(self, verifier):
        reject(
            verifier,
            Mov(R1, Imm(1)),
            Mov(R2, R10),
            Call("bpf_map_lookup_elem"),
            JmpIf("eq", R0, Imm(0), 6),
            Store(R0, 0, R10),    # storing a pointer into map memory
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
            match="cannot store a pointer",
        )


class TestSpilledReferences:
    """Acquired kptrs spilled to the stack stay tracked."""

    def test_release_via_reloaded_spill(self, verifier):
        verify(
            verifier,
            Mov(R1, Imm(64)),
            Call("bpf_obj_new"),
            JmpIf("eq", R0, Imm(0), 9),
            Store(R10, -8, R0),       # spill the acquired pointer
            Call("bpf_get_prandom_u32"),
            Load(R1, R10, -8),        # fill
            Call("bpf_obj_drop"),     # release through the reloaded reg
            Mov(R0, Imm(0)),
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
        )

    def test_spilled_leak_still_detected(self, verifier):
        reject(
            verifier,
            Mov(R1, Imm(64)),
            Call("bpf_obj_new"),
            JmpIf("eq", R0, Imm(0), 5),
            Store(R10, -8, R0),       # spill, then forget about it
            Jmp(5),
            Mov(R0, Imm(0)),
            Exit(),
            match="unreleased reference",
        )

    def test_spilled_copy_invalidated_after_release(self, verifier):
        reject(
            verifier,
            Mov(R1, Imm(64)),
            Call("bpf_obj_new"),
            JmpIf("eq", R0, Imm(0), 10),
            Store(R10, -8, R0),       # spill a copy
            Mov(R1, R0),
            Call("bpf_obj_drop"),     # release via the register
            Load(R1, R10, -8),        # the spilled copy is dead now
            Call("bpf_obj_drop"),
            Mov(R0, Imm(0)),
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
            match="uninitialized",
        )


class TestStatePruning:
    def test_diamond_cfg_converges(self, verifier):
        """Equal states after a branch merge are pruned, not re-explored."""
        stats = verify(
            verifier,
            Mov(R0, Imm(0)),
            Call("bpf_get_prandom_u32"),
            JmpIf("eq", R0, Imm(0), 4),
            Mov(R6, Imm(1)),
            Mov(R0, Imm(0)),
            Exit(),
        )
        assert stats.states_explored < 32
