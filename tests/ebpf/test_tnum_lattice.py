"""Property tests for the abstract-domain lattice behind widening.

The loop fixpoint of :mod:`repro.ebpf.verifier` is sound only if the
underlying operators are: ``Tnum.union`` / ``ScalarRange.join`` must be
upper bounds (no concrete value escapes the join), join must be
idempotent and commutative, and ``range_widen`` must cover the join it
replaces while reaching a fixpoint in a bounded number of steps.

Every strategy here produces an *(abstraction, witness)* pair — a
random concrete u64 plus a randomized abstraction built around it — so
soundness is checked against values known to be in the concretization,
not against the abstraction's own (possibly buggy) membership test.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.ebpf.tnum import (
    MASK64,
    S64_MAX,
    S64_MIN,
    ScalarRange,
    Tnum,
    _s64,
    range_join,
    range_subsumes,
    range_widen,
)


def _contains(r: ScalarRange, v: int) -> bool:
    """v is in the concretization of r (all components agree)."""
    sv = _s64(v)
    return (
        r.umin <= v <= r.umax
        and r.smin <= sv <= r.smax
        and r.tnum.contains(v)
    )


def _key(r: ScalarRange):
    return (r.tnum.value, r.tnum.mask, r.umin, r.umax, r.smin, r.smax)


def _canon(r: ScalarRange) -> ScalarRange:
    """Normalize to a fixpoint.

    One ``normalized()`` pass propagates facts between components but
    is not a full canonicalization (e.g. a tightened umax can enable a
    further smax tightening) — idempotence of join only holds on fully
    canonical inputs, so the generators canonicalize here.
    """
    while True:
        n = r.normalized()
        assert n is not None, r
        if _key(n) == _key(r):
            return n
        r = n


@st.composite
def tnum_with_witness(draw):
    """(tnum, v) with v in the tnum's concretization."""
    v = draw(st.integers(0, MASK64))
    mask = draw(st.integers(0, MASK64))
    return Tnum(v & ~mask & MASK64, mask), v


@st.composite
def range_with_witness(draw):
    """(range, v) with v in the range's concretization.

    Built by loosening each component of the exact abstraction of v
    independently, then normalizing — normalization is
    concretization-preserving, so v stays inside.
    """
    v = draw(st.integers(0, MASK64))
    sv = _s64(v)
    slack = st.integers(0, 1 << draw(st.integers(0, 63)))
    umin = max(0, v - draw(slack))
    umax = min(MASK64, v + draw(slack))
    smin = max(S64_MIN, sv - draw(slack))
    smax = min(S64_MAX, sv + draw(slack))
    mask = draw(st.integers(0, MASK64))
    tnum = Tnum(v & ~mask & MASK64, mask)
    raw = ScalarRange(tnum, umin, umax, smin, smax)
    # v is a member of every component, so the meet is non-empty and
    # normalization must not collapse it to bottom.
    r = _canon(raw)
    assert _contains(r, v), (raw, v)
    return r, v


@settings(max_examples=300, deadline=None)
@given(tnum_with_witness(), tnum_with_witness())
def test_tnum_union_sound(a, b):
    ta, va = a
    tb, vb = b
    u = ta.union(tb)
    assert u.contains(va), (ta, tb, va)
    assert u.contains(vb), (ta, tb, vb)


@settings(max_examples=200, deadline=None)
@given(tnum_with_witness())
def test_tnum_union_idempotent(a):
    t, _ = a
    assert t.union(t) == t


@settings(max_examples=300, deadline=None)
@given(range_with_witness(), range_with_witness())
def test_join_sound(a, b):
    ra, va = a
    rb, vb = b
    j = range_join(ra, rb)
    assert _contains(j, va), (ra, rb, va)
    assert _contains(j, vb), (ra, rb, vb)


@settings(max_examples=200, deadline=None)
@given(range_with_witness())
def test_join_idempotent(a):
    r, _ = a
    assert _key(range_join(r, r)) == _key(r)


@settings(max_examples=200, deadline=None)
@given(range_with_witness(), range_with_witness())
def test_join_commutative(a, b):
    ra, _ = a
    rb, _ = b
    assert _key(range_join(ra, rb)) == _key(range_join(rb, ra))


@settings(max_examples=200, deadline=None)
@given(range_with_witness(), range_with_witness())
def test_join_is_upper_bound(a, b):
    """The subsumption check the pruner uses agrees that the join
    covers both operands — ties the lattice to ``state_subsumes``."""
    ra, _ = a
    rb, _ = b
    j = range_join(ra, rb)
    assert range_subsumes(j, ra), (ra, rb, j)
    assert range_subsumes(j, rb), (ra, rb, j)


@settings(max_examples=200, deadline=None)
@given(range_with_witness(), range_with_witness(), range_with_witness())
def test_join_monotone_in_witnesses(a, b, c):
    """Joining in more operands never drops a previously covered
    witness (monotonicity, observed through concretizations)."""
    ra, va = a
    rb, vb = b
    rc, vc = c
    j2 = range_join(range_join(ra, rb), rc)
    assert _contains(j2, va) and _contains(j2, vb) and _contains(j2, vc)


@settings(max_examples=300, deadline=None)
@given(range_with_witness(), range_with_witness())
def test_widen_covers_join(a, b):
    """widen(old, join(old, new)) is sound for both witnesses and
    subsumes the join it replaces."""
    ra, va = a
    rb, vb = b
    j = range_join(ra, rb)
    w = range_widen(ra, j)
    assert _contains(w, va), (ra, rb, w)
    assert _contains(w, vb), (ra, rb, w)
    assert range_subsumes(w, j), (ra, rb, j, w)


@settings(max_examples=200, deadline=None)
@given(range_with_witness(), range_with_witness())
def test_widen_idempotent_once_covering(a, b):
    """Once widening has absorbed the growth, widening again with the
    same state is a no-op — the fixpoint the verifier loops toward."""
    ra, _ = a
    rb, _ = b
    w = range_widen(ra, range_join(ra, rb))
    assert _key(range_widen(w, w)) == _key(w)


def test_widen_chain_terminates():
    """A join/widen chain against adversarial random ranges reaches a
    fixpoint after boundedly many strict growth steps — each component
    can only jump to its type limit once, and the tnum's known
    alignment only shrinks.  This is what makes the verifier's
    MAX_FIXPOINT_ITERS cap unreachable in practice."""
    rng = random.Random(20260809)

    def rand_range():
        v = rng.getrandbits(64)
        mask = rng.getrandbits(64)
        span = rng.getrandbits(rng.randrange(1, 64))
        raw = ScalarRange(
            Tnum(v & ~mask & MASK64, mask),
            max(0, v - span), min(MASK64, v + span),
            max(S64_MIN, _s64(v) - span), min(S64_MAX, _s64(v) + span),
        )
        return _canon(raw)

    w = rand_range()
    growth_steps = 0
    for _ in range(400):
        j = range_join(w, rand_range())
        if _key(j) == _key(w):
            continue
        w = range_widen(w, j)
        growth_steps += 1
    # 4 interval jumps + at most 64 alignment shrinks, plus slop for
    # normalization interplay.
    assert growth_steps <= 140, growth_steps
    # And the chain genuinely stabilized: one more round is a no-op.
    j = range_join(w, rand_range())
    assert _key(range_widen(w, j)) == _key(w)
