"""Differential fuzz: the verifier's soundness and elision contracts.

A seeded generator emits programs biased toward the verifier's accept
frontier (guarded packet reads, counted loops, masked divisors, stack
tables, kptr lifecycles) plus mutated and junk variants that land on
the reject side.  For every *accepted* program, on several random
packets:

1. **Soundness** — the VM, with every runtime check still performed,
   never raises :class:`VmFault`.
2. **Elision transparency** — the same program with proven checks
   elided produces a bit-identical machine state: same r0, same final
   stack bytes, same packet bytes, same step count.
3. **JIT transparency** — the same program lowered to a generated
   Python closure (``backend="jit"``) produces a bit-identical machine
   state *and* bit-identical accounting: steps, checks performed /
   elided, instruction cycles, check cycles.
4. **Pruning transparency** — verifying with subsumption pruning
   disabled never changes an accept/reject verdict or the proof
   annotations that drive elision and unrolling.

The sweep size is ``REPRO_FUZZ_PROGRAMS`` (default 400 for tier-1; CI
runs the ``fuzz-sweep`` job at 2000+).  Everything derives from one
seed, so failures replay exactly.
"""

import os
import random

import pytest

from repro.ebpf.insn import (
    Alu,
    Call,
    Exit,
    Imm,
    JmpIf,
    Load,
    Mov,
    Program,
    Store,
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R10,
)
from repro.ebpf.progs import runnable_registry
from repro.ebpf.verifier import Verifier, VerifierError
from repro.ebpf.vm import Vm, VmFault

N_PROGRAMS = int(os.environ.get("REPRO_FUZZ_PROGRAMS", "400"))
SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260806"))
PACKETS_PER_PROGRAM = 3

ALU_OPS = ["add", "sub", "mul", "div", "mod", "and", "or", "xor", "lsh", "rsh"]
JMP_OPS = ["eq", "ne", "lt", "le", "gt", "ge"]


# -- program templates ------------------------------------------------------


def _t_guarded_pkt(rng: random.Random):
    """data_end-guarded load; sometimes the guard is too small."""
    need = rng.choice([8, 16, 24, 32])
    # Biased toward safe offsets; occasionally past the guard (reject).
    off = rng.choice([0, 8, need - 8, need - 8, need])
    return [
        Load(R2, R1, 0),
        Load(R3, R1, 8),
        Mov(R4, R2),
        Alu("add", R4, Imm(need)),
        JmpIf("gt", R4, R3, 7),
        Load(R0, R2, off),
        Exit(),
        Mov(R0, Imm(1)),
        Exit(),
    ]


def _t_counted_loop(rng: random.Random):
    """Counter-driven loop; sometimes the increment is dropped."""
    trips = rng.randint(1, 20)
    step = [Alu("add", R6, Imm(1))] if rng.random() > 0.15 else [Mov(R7, R6)]
    body = [
        Mov(R6, Imm(0)),
        Mov(R7, Imm(0)),
        Alu("add", R7, R6),
        *step,
        JmpIf("lt", R6, Imm(trips), 2),
        Mov(R0, R7),
        Alu("and", R0, Imm(3)),
        Exit(),
    ]
    return body


def _t_masked_div(rng: random.Random):
    """Divisor masked then offset; offset 0 leaves 0 in range (reject)."""
    mask = (1 << rng.randint(1, 5)) - 1
    bump = rng.choice([0, 1, 1, 2, 3])
    op = rng.choice(["div", "mod"])
    return [
        Call("bpf_get_prandom_u32"),
        Mov(R6, R0),
        Alu("and", R6, Imm(mask)),
        Alu("add", R6, Imm(bump)),
        Mov(R0, Imm(rng.randint(0, 10_000))),
        Alu(op, R0, R6),
        Alu("and", R0, Imm(3)),
        Exit(),
    ]


def _t_stack_table(rng: random.Random):
    """Init n slots, variable-offset read; sometimes reads past them."""
    n = rng.randint(1, 4)
    mask = rng.choice([8 * (n - 1), 8 * n]) & ~7
    insns = [Store(R10, -8 * (i + 1), Imm(i * 11)) for i in range(n)]
    insns += [
        Call("bpf_get_prandom_u32"),
        Alu("and", R0, Imm(mask)),
        Mov(R2, R10),
        Alu("sub", R2, Imm(8 * n)),
        Alu("add", R2, R0),
        Load(R0, R2, 0),
        Alu("and", R0, Imm(3)),
        Exit(),
    ]
    return insns


def _t_kptr(rng: random.Random):
    """Alloc / null-check / touch / release; sometimes leaks."""
    size = rng.choice([8, 16, 64])
    off = rng.choice([0, 8, size - 8, size])
    release = rng.random() > 0.2
    tail = [Mov(R1, R6), Call("bpf_obj_drop")] if release else [Mov(R5, R6)]
    end = 5 + len(tail) + 2
    return [
        Mov(R1, Imm(size)),
        Call("bpf_obj_new"),
        JmpIf("eq", R0, Imm(0), end),
        Mov(R6, R0),
        Store(R6, off, Imm(7)),
        *tail,
        Mov(R0, Imm(2)),
        Exit(),
        Mov(R0, Imm(1)),
        Exit(),
    ]


def _t_eq_dispatch(rng: random.Random):
    """Switch-style eq-chain on a masked scalar; all arms share a tail.

    The fall-through (general) state blackens the tail first, then
    every refined arm state arrives subsumed — the shape where the
    verifier's subsumption pruning pays off."""
    k = rng.randint(3, 8)
    tail = 3 + k
    insns = [
        Call("bpf_get_prandom_u32"),
        Mov(R6, R0),
        Alu("and", R6, Imm(0xFF)),
    ]
    for i in range(k):
        insns.append(JmpIf("eq", R6, Imm(i + 1), tail))
    insns += [
        Mov(R0, R6),
        Alu("and", R0, Imm(3)),
        Exit(),
    ]
    return insns


def _t_data_loop(rng: random.Random):
    """Loop bound read from a guarded packet word (data-dependent).

    The bound is usually masked, sometimes additionally clamped by a
    branch; the verifier must widen the header state and prove
    termination from the counter.  Reject-side variants drop the mask
    (widened trip bound overflows) or the increment (no progress)."""
    mask = rng.choice([0x1FF, 0x3FF, 0x7FF])
    step = rng.choice([1, 1, 1, 2, 3])
    masked = rng.random() > 0.1
    progress = rng.random() > 0.15
    refine = rng.random() < 0.4
    insns = [
        Load(R2, R1, 0),
        Load(R3, R1, 8),
        Mov(R4, R2),
        Alu("add", R4, Imm(8)),
        None,                        # guard jump, patched to the drop tail
        Load(R7, R2, 0),             # n = first packet word
    ]
    guard_at = 4
    if masked:
        insns.append(Alu("and", R7, Imm(mask)))
    if refine:
        limit = (mask >> 1) + 1
        insns.append(JmpIf("le", R7, Imm(limit), len(insns) + 2))
        insns.append(Mov(R7, Imm(limit)))
    insns += [Mov(R6, Imm(0)), Mov(R0, Imm(0))]
    header = len(insns)
    insns.append(Alu("add", R0, Imm(5)))
    insns.append(Alu("add", R6, Imm(step)) if progress else Mov(R5, R6))
    insns.append(JmpIf("lt", R6, R7, header))
    insns += [Alu("and", R0, Imm(3)), Exit()]
    drop = len(insns)
    insns += [Mov(R0, Imm(1)), Exit()]
    insns[guard_at] = JmpIf("gt", R4, R3, drop)
    return insns


def _t_junk(rng: random.Random):
    """Random instruction soup (forward jumps only); mostly rejected."""
    n = rng.randint(3, 10)
    insns = []
    for _ in range(n):
        kind = rng.randrange(5)
        if kind == 0:
            insns.append(Mov(rng.randrange(10), Imm(rng.randint(-64, 64))))
        elif kind == 1:
            insns.append(Mov(rng.randrange(10), rng.randrange(11)))
        elif kind == 2:
            insns.append(Alu(rng.choice(ALU_OPS), rng.randrange(10),
                             Imm(rng.randint(-4, 64))))
        elif kind == 3:
            insns.append(Store(R10, rng.choice([-8, -16, -24, 0, 8]),
                               Imm(rng.randint(0, 9))))
        else:
            insns.append(Load(rng.randrange(10), rng.randrange(11),
                              rng.choice([-8, -16, 0, 8])))
    insns += [Mov(R0, Imm(0)), Exit()]
    return insns


TEMPLATES = [_t_guarded_pkt, _t_counted_loop, _t_masked_div,
             _t_stack_table, _t_kptr, _t_eq_dispatch, _t_data_loop,
             _t_junk]


def _mutate(rng: random.Random, insns):
    """Perturb one instruction; keeps the program syntactically valid."""
    i = rng.randrange(len(insns))
    insn = insns[i]
    if isinstance(insn, Alu) and isinstance(insn.src, Imm):
        insns[i] = Alu(insn.op, insn.dst, Imm(insn.src.value + rng.choice([-8, 8])))
    elif isinstance(insn, Load):
        insns[i] = Load(insn.dst, insn.base, insn.off + rng.choice([-8, 8]))
    elif isinstance(insn, JmpIf):
        insns[i] = JmpIf(rng.choice(JMP_OPS), insn.lhs, insn.rhs, insn.target)
    elif isinstance(insn, Mov):
        insns[i] = Mov(insn.dst, Imm(rng.randint(-16, 16)))
    return insns


def _gen_program(rng: random.Random, idx: int) -> Program:
    insns = rng.choice(TEMPLATES)(rng)
    if rng.random() < 0.3:
        insns = _mutate(rng, insns)
    return Program(insns, name=f"fuzz_{idx}")


def _rand_packet(rng: random.Random) -> bytes:
    return bytes(rng.randrange(256) for _ in range(rng.choice([0, 16, 40, 64])))


def _machine_state(vm: Vm, r0: int):
    return (r0, bytes(vm.stack), bytes(vm.packet), vm.stats.steps)


def _accounting(vm: Vm):
    return (vm.stats.steps, vm.stats.checks_performed,
            vm.stats.checks_elided, vm.stats.insn_cycles,
            vm.stats.check_cycles)


def test_differential_fuzz():
    rng = random.Random(SEED)
    registry = runnable_registry(SEED)  # metadata only; impls re-bound per run
    verifier = Verifier(registry)
    accepted = rejected = 0

    for idx in range(N_PROGRAMS):
        prog = _gen_program(rng, idx)
        try:
            vp = verifier.verify(prog)
        except VerifierError:
            rejected += 1
            continue
        accepted += 1
        kfunc_seed = rng.randrange(1 << 30)
        for _ in range(PACKETS_PER_PROGRAM):
            packet = _rand_packet(rng)
            # Checked run: proofs attached, every check still performed.
            vm_c = Vm(runnable_registry(kfunc_seed), packet=packet,
                      proofs=vp, elide_checks=False)
            try:
                r0_c = vm_c.run(prog)
            except VmFault as exc:                      # pragma: no cover
                pytest.fail(
                    f"{prog.name} (seed {SEED}): verifier accepted but VM "
                    f"faulted with checks on: {exc}"
                )
            assert vm_c.stats.checks_elided == 0
            # Elided run: identical machine state, zero checks performed
            # beyond the unproven ones.
            vm_e = Vm(runnable_registry(kfunc_seed), packet=packet,
                      proofs=vp, elide_checks=True)
            r0_e = vm_e.run(prog)
            assert _machine_state(vm_c, r0_c) == _machine_state(vm_e, r0_e), (
                f"{prog.name} (seed {SEED}): elided run diverged"
            )
            assert (vm_e.stats.checks_performed + vm_e.stats.checks_elided
                    == vm_c.stats.checks_performed)
            # JIT run: identical machine state AND identical accounting
            # (steps, check counts, cycle charges) to the elided
            # interpreter run — the compiler's parity contract.
            vm_j = Vm(runnable_registry(kfunc_seed), packet=packet,
                      proofs=vp, elide_checks=True, backend="jit")
            r0_j = vm_j.run(prog)
            assert _machine_state(vm_e, r0_e) == _machine_state(vm_j, r0_j), (
                f"{prog.name} (seed {SEED}): JIT run diverged"
            )
            assert _accounting(vm_e) == _accounting(vm_j), (
                f"{prog.name} (seed {SEED}): JIT accounting diverged"
            )

    # Generator sanity: the sweep exercises both sides of the frontier.
    assert accepted >= N_PROGRAMS // 10, (accepted, rejected)
    assert rejected >= N_PROGRAMS // 10, (accepted, rejected)
    print(f"\ndifferential fuzz: {accepted} accepted / {rejected} rejected "
          f"of {N_PROGRAMS} (seed {SEED})")


def test_data_loop_family_states_bounded():
    """Widened data-dependent loops verify in O(1) abstract states per
    header: across the template family the accepted programs' state
    counts stay flat instead of scaling with the (data-dependent) trip
    bound — the seed verifier needed one abstract state per trip."""
    rng = random.Random(SEED + 1)
    verifier = Verifier(runnable_registry(SEED))
    accepted = widened = 0
    for idx in range(80):
        prog = Program(_t_data_loop(rng), name=f"dloop_{idx}")
        try:
            vp = verifier.verify(prog)
        except VerifierError:
            continue
        accepted += 1
        if vp.stats.loops_widened:
            widened += 1
            # The first fixpoint attempt enumerates at most
            # WIDEN_AFTER_TRIPS trips before widening kicks in; the
            # converged attempt holds one invariant state per header.
            assert vp.stats.states_explored <= 2500, (
                prog.name, vp.stats.states_explored)
            assert vp.stats.fixpoint_iters <= 32, prog.name
            assert vp.annotations.loop_invariants, prog.name
    assert accepted >= 20, (accepted, widened)
    assert widened >= 5, (accepted, widened)


def test_pruning_differential():
    """Subsumption pruning is verdict-transparent: on the same corpus,
    the pruned and unpruned verifiers agree on accept/reject, on the
    rejection reason class, and — for accepts — on every proof
    annotation the VM and JIT consume (``safe_mem``, ``safe_div``,
    ``loop_bounds``)."""
    rng = random.Random(SEED)
    registry = runnable_registry(SEED)
    pruned_v = Verifier(registry)
    unpruned_v = Verifier(registry, prune=False)
    total_pruned_states = 0

    for idx in range(N_PROGRAMS):
        prog = _gen_program(rng, idx)
        try:
            vp_p = pruned_v.verify(prog)
        except VerifierError as exc:
            with pytest.raises(VerifierError):
                unpruned_v.verify(prog)
            continue
        vp_u = unpruned_v.verify(prog)  # must not raise
        assert vp_p.annotations.safe_mem == vp_u.annotations.safe_mem, prog.name
        assert vp_p.annotations.safe_div == vp_u.annotations.safe_div, prog.name
        assert (vp_p.annotations.loop_bounds
                == vp_u.annotations.loop_bounds), prog.name
        assert (
            {h: i.trip_bound
             for h, i in vp_p.annotations.loop_invariants.items()}
            == {h: i.trip_bound
                for h, i in vp_u.annotations.loop_invariants.items()}
        ), prog.name
        assert vp_u.stats.states_pruned == 0
        assert (vp_p.stats.states_explored + vp_p.stats.states_pruned
                <= vp_u.stats.states_explored + vp_p.stats.states_pruned)
        total_pruned_states += vp_p.stats.states_pruned

    # The corpus must actually exercise the pruner, or this test is vacuous.
    assert total_pruned_states > 0
