"""Widening-based loop verification: end-to-end contracts.

The two bundled data-dependent-loop programs (``loop_pkt_search``,
``loop_lpm_walk``) are the acceptance witnesses for PR 9: the seed
verifier (``widen="off"``) rejects both by state explosion, the
widening verifier accepts both in O(1) abstract states, the proofs
that survive widening still elide runtime checks, and the programs run
bit-identically through :class:`~repro.net.irnf.IrNf` on both
backends.
"""

import pytest

from repro.ebpf.jit import compile_program
from repro.ebpf.kfunc_meta import default_registry
from repro.ebpf.progs import get_case, runnable_registry
from repro.ebpf.verifier import (
    MAX_FIXPOINT_ITERS,
    Verifier,
    VerifierError,
    WIDEN_AFTER_TRIPS,
)
from repro.net.packet import Packet
from repro.net.irnf import IrNf
from repro.ebpf.runtime import BpfRuntime

DATA_LOOPS = ("loop_pkt_search", "loop_lpm_walk")


@pytest.fixture(scope="module")
def registry():
    return default_registry()


def _pkt(**kw) -> Packet:
    defaults = dict(src_ip=0x0A000001, dst_ip=0x0A000002,
                    src_port=1234, dst_port=80)
    defaults.update(kw)
    return Packet(**defaults)


class TestBundledDataLoops:
    @pytest.mark.parametrize("name", DATA_LOOPS)
    def test_seed_rejects(self, registry, name):
        """The exact programs now shipped were unverifiable before
        widening: per-trip enumeration blows the state budget."""
        with pytest.raises(VerifierError, match="state limit"):
            Verifier(registry, widen="off").verify(get_case(name).prog)

    @pytest.mark.parametrize("name", DATA_LOOPS)
    def test_widening_accepts_in_constant_states(self, registry, name):
        vp = Verifier(registry).verify(get_case(name).prog)
        st = vp.stats
        assert st.loops_widened == 1
        assert 0 < st.fixpoint_iters < MAX_FIXPOINT_ITERS
        # O(1) abstract states: far below one state per trip (the
        # data-dependent bound is 16383) and below the widening trip
        # threshold itself.
        assert st.states_explored < WIDEN_AFTER_TRIPS
        assert len(vp.loop_invariants) == 1
        (inv,) = vp.loop_invariants.values()
        assert inv.trip_bound == 16385  # 0x3fff bound, +2 slack

    def test_proofs_survive_widening(self, registry):
        """The elisions the widened invariant can still justify are
        kept — the Kops lesson: an analysis extension only pays off if
        the downstream proofs survive it."""
        vp = Verifier(registry).verify(get_case("loop_pkt_search").prog)
        # In-loop guarded packet load at pc 17 stays elided.
        assert 17 in vp.annotations.safe_mem
        vp = Verifier(registry).verify(get_case("loop_lpm_walk").prog)
        # In-loop division by the loop-invariant nonzero radix.
        assert 13 in vp.annotations.safe_div

    @pytest.mark.parametrize("name", DATA_LOOPS)
    def test_widened_loops_are_not_unrolled(self, registry, name):
        """Widened back-edges carry no constant trip count, so they
        must stay out of ``loop_bounds`` (the JIT's unroll driver) and
        flow through the guarded dispatch loop instead."""
        vp = Verifier(registry).verify(get_case(name).prog)
        assert not vp.annotations.loop_bounds
        assert vp.widened_steps > 0
        assert vp.max_steps > vp.widened_steps  # base budget still there
        compiled = compile_program(
            get_case(name).prog, vp, runnable_registry(0), elide_checks=True
        )
        assert compiled.unrolled == {}

    @pytest.mark.parametrize("name", DATA_LOOPS)
    def test_irnf_interp_jit_parity(self, registry, name):
        """Bit-identical verdicts and accounting through the NF layer,
        across packets that drive different trip counts."""
        vp = Verifier(registry).verify(get_case(name).prog)
        pkts = [
            _pkt(),                                  # tiny loop bounds
            _pkt(src_ip=0xDEAD0007, dst_ip=0x00000FFF),
            _pkt(src_ip=0x00000000, dst_ip=0x00000000),  # zero-trip walk
            _pkt(src_ip=0x12345678, dst_ip=0x0BAD0FAD),
            _pkt(src_ip=0xFFFFFFFF, dst_ip=0xFFFFFFFF, size=128),
        ]
        results = {}
        for backend in ("interp", "jit"):
            rt = BpfRuntime()
            nf = IrNf(rt, vp, registry=runnable_registry(0), backend=backend)
            actions = nf.process_batch(pkts)
            results[backend] = (
                tuple(nf.returns), dict(actions), nf.stats.steps,
                nf.stats.checks_performed, nf.stats.checks_elided,
                nf.stats.insn_cycles, nf.stats.check_cycles,
            )
            assert set(nf.returns) <= {1, 2}, nf.returns
        assert results["interp"] == results["jit"]


class TestWidenModes:
    def test_off_matches_seed_on_counted_loop(self, registry):
        """``widen="off"`` is the seed verifier: constant-trip loops
        still verify by per-trip enumeration, no fixpoint machinery."""
        vp = Verifier(registry, widen="off").verify(
            get_case("loop_counted").prog)
        assert vp.stats.loops_bounded == 1
        assert vp.stats.loops_widened == 0
        assert vp.stats.fixpoint_iters == 0
        assert not vp.loop_invariants

    def test_auto_leaves_small_loops_alone(self, registry):
        """Loops under the trip threshold keep the precise per-trip
        analysis (and with it, JIT unrolling)."""
        vp = Verifier(registry).verify(get_case("loop_counted").prog)
        assert vp.stats.loops_widened == 0
        assert vp.annotations.loop_bounds  # unroll info preserved

    def test_always_mode_widens_counted_loop(self, registry):
        """The ablation mode widens every back-edge target: the same
        16-trip loop verifies in fewer states through one invariant."""
        auto = Verifier(registry).verify(get_case("loop_counted").prog)
        always = Verifier(registry, widen="always").verify(
            get_case("loop_counted").prog)
        assert always.stats.loops_widened == 1
        assert always.stats.fixpoint_iters > 0
        assert always.stats.states_explored < auto.stats.states_explored

    def test_invalid_mode_rejected(self, registry):
        with pytest.raises(ValueError, match="widen"):
            Verifier(registry, widen="sometimes")


class TestDiagnostics:
    def test_no_progress_loop_explains_itself(self, registry):
        """A loop whose body makes no provable progress is rejected
        with the back-edge named and the header-state diff printed."""
        with pytest.raises(VerifierError) as ei:
            Verifier(registry).verify(get_case("loop_unbounded").prog)
        err = ei.value
        assert "back-edge" in str(err)
        assert err.loop_header is not None
        text = err.explain()
        assert "loop header: insn" in text
        assert "->" in text  # joined/widened state diff entries

    def test_fixpoint_iteration_cap(self, registry):
        """The hard cap exists and is not hit by the bundled corpus."""
        assert MAX_FIXPOINT_ITERS >= 8
        for name in DATA_LOOPS:
            vp = Verifier(registry).verify(get_case(name).prog)
            assert vp.stats.fixpoint_iters <= 8
