"""Tests for the IR disassembler."""

import pytest

from repro.ebpf.disasm import disassemble, disassemble_one
from repro.ebpf.insn import (
    Alu,
    Call,
    Exit,
    Imm,
    Jmp,
    JmpIf,
    Load,
    Mov,
    Program,
    Store,
    R0,
    R1,
    R2,
    R10,
)


class TestDisassembleOne:
    @pytest.mark.parametrize(
        "insn,expected",
        [
            (Mov(R0, Imm(42)), "r0 = 42"),
            (Mov(R0, R2), "r0 = r2"),
            (Alu("add", R1, Imm(8)), "r1 += 8"),
            (Alu("lsh", R2, R1), "r2 <<= r1"),
            (Load(R0, R10, -8), "r0 = *(u64 *)(r10 -8)"),
            (Store(R10, -16, Imm(7)), "*(u64 *)(r10 -16) = 7"),
            (Store(R2, 0, R1), "*(u64 *)(r2 +0) = r1"),
            (Call("node_alloc"), "call node_alloc"),
            (Jmp(5), "goto 5"),
            (JmpIf("ne", R0, Imm(0), 3), "if r0 != 0 goto 3"),
            (Exit(), "exit"),
        ],
    )
    def test_rendering(self, insn, expected):
        assert disassemble_one(insn) == expected


class TestDisassembleProgram:
    def test_numbered_listing(self):
        prog = Program(
            [Mov(R0, Imm(1)), JmpIf("eq", R0, Imm(0), 3), Alu("add", R0, Imm(1)),
             Exit()],
            name="demo",
        )
        text = disassemble(prog)
        lines = text.splitlines()
        assert lines[0] == "; program demo (4 insns)"
        assert lines[1].strip().startswith("0: r0 = 1")
        assert lines[-1].strip().endswith("exit")

    def test_every_insn_kind_covered(self):
        prog = Program(
            [
                Mov(R1, Imm(64)),
                Call("bpf_obj_new"),
                JmpIf("eq", R0, Imm(0), 7),
                Mov(R2, R0),
                Store(R10, -8, Imm(0)),
                Load(R1, R10, -8),
                Jmp(7),
                Exit(),
            ]
        )
        text = disassemble(prog)
        for fragment in ("call", "goto", "exit", "*(u64 *)"):
            assert fragment in text
