"""Map-update failure paths: E2BIG rejection, LRU eviction, injection.

Covers the kernel's update failure semantics across the four hash-type
maps: plain hash and percpu hash reject new keys at ``max_entries``
with ``-E2BIG``, while the LRU variants evict the coldest key instead
and never fail; fault injection makes updates fail on schedule even
when the map has room.
"""

import pytest

from repro.ebpf.maps import (
    BpfHashMap,
    BpfLruHashMap,
    BpfLruPercpuHashMap,
    BpfPercpuHashMap,
    MapFullError,
    MapNoMemError,
)
from repro.ebpf.runtime import BpfRuntime
from repro.faults import FaultPlan


@pytest.fixture()
def rt():
    return BpfRuntime()


class TestHashMapRejection:
    def test_overflow_raises_e2big(self, rt):
        m = BpfHashMap(rt, max_entries=4, name="flows")
        for k in range(4):
            m.update(k, k)
        with pytest.raises(MapFullError) as err:
            m.update(99, 99)
        assert err.value.errno == -7
        assert len(m) == 4

    def test_existing_key_updates_at_capacity(self, rt):
        m = BpfHashMap(rt, max_entries=2)
        m.update("a", 1)
        m.update("b", 2)
        m.update("a", 10)          # overwrite: no new entry, no error
        assert m.lookup("a") == 10

    def test_delete_then_insert_fits_again(self, rt):
        m = BpfHashMap(rt, max_entries=2)
        m.update("a", 1)
        m.update("b", 2)
        assert m.delete("a")
        m.update("c", 3)
        assert m.lookup("c") == 3


class TestLruEviction:
    def test_overflow_evicts_instead_of_failing(self, rt):
        m = BpfLruHashMap(rt, max_entries=3)
        for k in "abc":
            m.update(k, k)
        m.update("d", "d")          # evicts "a", the coldest
        assert m.evictions == 1
        assert m.lookup("a") is None
        assert m.lookup("d") == "d"
        assert len(m) == 3

    def test_lookup_refreshes_recency(self, rt):
        m = BpfLruHashMap(rt, max_entries=2)
        m.update("a", 1)
        m.update("b", 2)
        m.lookup("a")               # "a" now hot, "b" cold
        m.update("c", 3)
        assert m.lookup("b") is None
        assert m.lookup("a") == 1


class TestPercpuVariants:
    def test_percpu_overflow_raises_e2big(self, rt):
        m = BpfPercpuHashMap(rt, max_entries=2, n_cpus=4)
        m.update("a", 1, cpu=0)
        m.update("b", 2, cpu=1)
        with pytest.raises(MapFullError):
            m.update("c", 3, cpu=2)

    def test_percpu_slots_are_private(self, rt):
        m = BpfPercpuHashMap(rt, max_entries=4, n_cpus=2)
        m.update("k", 10, cpu=0)
        m.update("k", 20, cpu=1)
        assert m.lookup("k", cpu=0) == 10
        assert m.lookup("k", cpu=1) == 20
        assert m.values_of("k") == [10, 20]

    def test_percpu_same_key_never_counts_twice(self, rt):
        m = BpfPercpuHashMap(rt, max_entries=1, n_cpus=4)
        for cpu in range(4):
            m.update("shared", cpu, cpu=cpu)
        assert len(m) == 1

    def test_lru_percpu_evicts_whole_key(self, rt):
        m = BpfLruPercpuHashMap(rt, max_entries=2, n_cpus=2)
        m.update("a", 1, cpu=0)
        m.update("a", 2, cpu=1)
        m.update("b", 3, cpu=0)
        m.update("c", 4, cpu=1)     # evicts "a" with both its slots
        assert m.evictions == 1
        assert m.values_of("a") is None
        assert m.lookup("b", cpu=0) == 3

    def test_lru_percpu_lookup_refreshes(self, rt):
        m = BpfLruPercpuHashMap(rt, max_entries=2, n_cpus=1)
        m.update("a", 1)
        m.update("b", 2)
        m.lookup("a")
        m.update("c", 3)
        assert m.values_of("b") is None
        assert m.lookup("a") == 1

    def test_cpu_bounds_checked(self, rt):
        m = BpfPercpuHashMap(rt, max_entries=4, n_cpus=2)
        with pytest.raises(IndexError):
            m.update("k", 1, cpu=2)
        with pytest.raises(IndexError):
            m.lookup("k", cpu=-1)


class TestInjectedMapFaults:
    def test_injected_full_fails_update_with_room(self, rt):
        rt.faults = FaultPlan(map_full_rate=1.0).injector()
        m = BpfHashMap(rt, max_entries=100, name="flows")
        with pytest.raises(MapFullError, match="injected"):
            m.update("a", 1)
        assert len(m) == 0

    def test_injected_nomem(self, rt):
        rt.faults = FaultPlan(map_nomem_rate=1.0).injector()
        m = BpfLruHashMap(rt, max_entries=100)
        with pytest.raises(MapNoMemError) as err:
            m.update("a", 1)
        assert err.value.errno == -12

    def test_injection_hits_every_hash_map_type(self, rt):
        rt.faults = FaultPlan(map_full_rate=1.0).injector()
        for m in (
            BpfHashMap(rt, 8),
            BpfLruHashMap(rt, 8),
            BpfPercpuHashMap(rt, 8),
            BpfLruPercpuHashMap(rt, 8),
        ):
            with pytest.raises(MapFullError):
                m.update("k", 1)

    def test_partial_rate_is_deterministic(self, rt):
        def failures(seed):
            runtime = BpfRuntime()
            runtime.faults = FaultPlan(map_full_rate=0.2, seed=seed).injector()
            m = BpfLruHashMap(runtime, max_entries=10_000)
            failed = []
            for i in range(500):
                try:
                    m.update(i, i)
                except MapFullError:
                    failed.append(i)
            return failed

        assert failures(7) == failures(7)
        assert failures(7) != failures(8)
        assert 0 < len(failures(7)) < 500

    def test_no_injector_no_faults(self, rt):
        m = BpfHashMap(rt, max_entries=100)
        for i in range(100):
            m.update(i, i)
        assert len(m) == 100
