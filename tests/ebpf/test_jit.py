"""The JIT compiler's parity, cache, unrolling, and pruning contracts.

The compiler's promise is *bit-identical observable behavior* to the
interpreter — r0, final stack/packet/ctx bytes, step counts, check
accounting, and cycle charges — while executing straight-line
generated Python.  These tests pin that promise on every bundled
program (both elide modes, with and without a cycle counter), plus the
cache-identity rules (same hash -> same closure object, mutated
program -> miss) and the subsumption-pruning budget win the unrolled
NF programs rely on.
"""

import random

import pytest

from repro.ebpf.cost_model import Cycles
from repro.ebpf.insn import (
    Alu,
    Call,
    Exit,
    Imm,
    JmpIf,
    Load,
    Mov,
    Program,
    R0,
    R1,
    R2,
    R3,
    R6,
    R7,
    R8,
    R10,
    Store,
)
from repro.ebpf.jit import (
    CompiledProgram,
    JitError,
    compile_program,
    compiled_for,
    program_hash,
)
from repro.ebpf.progs import bundled_cases, get_case, runnable_registry
from repro.ebpf.verifier import Verifier, VerifierError
from repro.ebpf.vm import Vm

SEED = 20260806


def _accepted_cases():
    verifier = Verifier(runnable_registry(0))
    out = []
    for case in bundled_cases():
        try:
            out.append((case, verifier.verify(case.prog)))
        except VerifierError:
            pass
    return out


def _run(prog, vp, backend, packet, elide=True, seed=3, cycles=None):
    vm = Vm(runnable_registry(seed), packet=packet, proofs=vp,
            elide_checks=elide, backend=backend, cycles=cycles)
    r0 = vm.run(prog)
    return vm, r0


def _observable(vm, r0):
    return (
        r0,
        bytes(vm.stack),
        bytes(vm.packet),
        bytes(vm.ctx),
        vm.stats.steps,
        vm.stats.checks_performed,
        vm.stats.checks_elided,
        vm.stats.insn_cycles,
        vm.stats.check_cycles,
    )


# -- parity ------------------------------------------------------------------


def test_bundled_parity_all_programs():
    """Every accepted bundled program, both elide modes, several
    packets: the JIT's machine state and accounting match the
    interpreter bit for bit."""
    rng = random.Random(SEED)
    checked = 0
    for case, vp in _accepted_cases():
        for _ in range(3):
            packet = bytes(rng.randrange(256)
                           for _ in range(rng.choice([0, 40, 64])))
            for elide in (True, False):
                vm_i, r0_i = _run(case.prog, vp, "interp", packet, elide)
                vm_j, r0_j = _run(case.prog, vp, "jit", packet, elide)
                assert _observable(vm_i, r0_i) == _observable(vm_j, r0_j), (
                    f"{case.name} elide={elide}"
                )
                checked += 1
    assert checked >= 40  # 11 accepted programs x 3 packets x 2 modes


def test_cycle_charges_identical():
    """With a cycle counter attached, per-category charges match."""
    packet = bytes(range(11, 75))
    for case, vp in _accepted_cases():
        cyc_i, cyc_j = Cycles(), Cycles()
        vm_i, r0_i = _run(case.prog, vp, "interp", packet, cycles=cyc_i)
        vm_j, r0_j = _run(case.prog, vp, "jit", packet, cycles=cyc_j)
        assert r0_i == r0_j
        assert cyc_i.total == cyc_j.total, case.name
        assert cyc_i.snapshot() == cyc_j.snapshot(), case.name


def test_kfunc_state_accumulates_identically():
    """Kfunc state lives in the registry closure and carries across
    packets: a 50-packet sketch run produces the same estimate
    sequence under both backends."""
    case = get_case("nf_cm_sketch")
    vp = Verifier(runnable_registry(0)).verify(case.prog)
    rng = random.Random(7)
    packets = [bytes(rng.randrange(256) for _ in range(64))
               for _ in range(50)]
    results = {}
    for backend in ("interp", "jit"):
        reg = runnable_registry(5)
        outs = []
        for pkt in packets:
            vm = Vm(reg, packet=pkt, proofs=vp, backend=backend)
            outs.append(vm.run(case.prog))
        results[backend] = outs
    assert results["interp"] == results["jit"]


def test_jit_requires_proofs():
    prog = Program([Mov(R0, Imm(0)), Exit()], name="tiny")
    with pytest.raises(JitError):
        compile_program(prog, None, runnable_registry(0))
    vm = Vm(runnable_registry(0), backend="jit")  # no proofs attached
    with pytest.raises(ValueError):
        vm.run(prog)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        Vm(runnable_registry(0), backend="llvm")


# -- generated code shape ----------------------------------------------------


def test_loop_unrolled_to_straight_line():
    """loop_counted's proven 15 back-edge traversals unroll into 16
    body copies with forward-only dispatch — no `continue` (the
    generated code's only backward-jump construct) survives."""
    case = get_case("loop_counted")
    vp = Verifier(runnable_registry(0)).verify(case.prog)
    compiled = compile_program(case.prog, vp, runnable_registry(0))
    assert compiled.unrolled == {4: 16}
    assert "continue" not in compiled.source
    assert "eval" not in compiled.source


def test_oversized_loop_falls_back_to_dispatch():
    """A trip count past UNROLL_MAX_TRIPS still compiles — as a real
    dispatch loop with the step-budget guard — and stays bit-identical."""
    insns = [
        Mov(R6, Imm(0)),
        Mov(R7, Imm(0)),
        Alu("add", R7, R6),
        Alu("add", R6, Imm(1)),
        JmpIf("lt", R6, Imm(200), 2),   # 200 trips > UNROLL_MAX_TRIPS
        Mov(R0, R7),
        Exit(),
    ]
    prog = Program(insns, name="loop_wide")
    vp = Verifier(runnable_registry(0)).verify(prog)
    compiled = compile_program(prog, vp, runnable_registry(0))
    assert compiled.unrolled == {}
    assert "continue" in compiled.source
    vm_i, r0_i = _run(prog, vp, "interp", b"")
    vm_j, r0_j = _run(prog, vp, "jit", b"")
    assert _observable(vm_i, r0_i) == _observable(vm_j, r0_j)


# -- compiled-program cache --------------------------------------------------


def test_cache_hit_returns_same_closure():
    case = get_case("nf_classifier")
    reg = runnable_registry(0)
    vp = Verifier(reg).verify(case.prog)
    a = compiled_for(reg, case.prog, vp)
    b = compiled_for(reg, case.prog, vp)
    assert a is b
    assert a.fn is b.fn


def test_cache_miss_on_mutated_program():
    """Re-verifying a mutated program must miss the cache: the key is
    the program's content hash, not its name or object identity."""
    case = get_case("nf_classifier")
    reg = runnable_registry(0)
    verifier = Verifier(reg)
    vp = verifier.verify(case.prog)
    original = compiled_for(reg, case.prog, vp)

    mutated_insns = list(case.prog)
    # Flip the verdict fold: `and r0, 1` -> `and r0, 3`.
    mutated_insns[19] = Alu("and", R0, Imm(3))
    mutated = Program(mutated_insns, name=case.prog.name)  # same name!
    assert program_hash(mutated) != program_hash(case.prog)
    vp_m = verifier.verify(mutated)
    recompiled = compiled_for(reg, mutated, vp_m)
    assert recompiled is not original
    assert recompiled.prog_hash != original.prog_hash

    # The original's cache entry is untouched.
    assert compiled_for(reg, case.prog, vp) is original


def test_cache_keyed_by_registry_and_elide():
    """Kfunc impls are burned in at compile time, so each registry gets
    its own code; elide on/off are distinct entries too."""
    case = get_case("nf_classifier")
    reg_a, reg_b = runnable_registry(0), runnable_registry(0)
    vp = Verifier(reg_a).verify(case.prog)
    a = compiled_for(reg_a, case.prog, vp)
    b = compiled_for(reg_b, case.prog, vp)
    assert a is not b
    elided = compiled_for(reg_a, case.prog, vp, elide_checks=True)
    checked = compiled_for(reg_a, case.prog, vp, elide_checks=False)
    assert elided is not checked
    assert compiled_for(reg_a, case.prog, vp, elide_checks=False) is checked


def test_vm_runs_share_cached_closure():
    """Two JIT VMs over the same registry reuse one CompiledProgram."""
    case = get_case("pkt_guarded_read")
    reg = runnable_registry(0)
    vp = Verifier(reg).verify(case.prog)
    pkt = bytes(64)
    Vm(reg, packet=pkt, proofs=vp, backend="jit").run(case.prog)
    before = compiled_for(reg, case.prog, vp)
    Vm(reg, packet=pkt, proofs=vp, backend="jit").run(case.prog)
    assert compiled_for(reg, case.prog, vp) is before


# -- subsumption pruning budget ----------------------------------------------


def _eq_dispatch_prog(k: int, tail_pad: int) -> Program:
    """Switch-style eq-chain whose arms share a long tail: the pruned
    verifier visits the tail once (general state) and subsumes every
    refined arm; the unpruned verifier re-walks it per arm."""
    insns = [
        Call("bpf_get_prandom_u32"),
        Mov(R6, R0),
        Alu("and", R6, Imm(0xFF)),
    ]
    tail = 3 + k
    for i in range(k):
        insns.append(JmpIf("eq", R6, Imm(i + 1), tail))
    insns += [Mov(R0, R6)]
    insns += [Alu("add", R0, Imm(1)) for _ in range(tail_pad)]
    insns += [Alu("and", R0, Imm(3)), Exit()]
    return Program(insns, name=f"eq_dispatch_{k}_{tail_pad}")


def test_pruning_verifies_within_budget_unpruned_exceeds():
    """The acceptance demo: under the same ``max_states`` budget, the
    pruned verifier accepts the dispatch-heavy program that the
    unpruned verifier rejects as too complex."""
    prog = _eq_dispatch_prog(12, 24)
    reg = runnable_registry(0)
    budget = 128

    vp = Verifier(reg, max_states=budget).verify(prog)
    assert vp.stats.states_pruned >= 12
    assert vp.stats.states_explored <= budget

    with pytest.raises(VerifierError, match="state limit"):
        Verifier(reg, prune=False, max_states=budget).verify(prog)
    # Without the budget the unpruned verifier accepts — and needs
    # several times more states, which is exactly what pruning saves.
    vp_u = Verifier(reg, prune=False).verify(prog)
    assert vp_u.stats.states_explored > 2 * (
        vp.stats.states_explored + vp.stats.states_pruned
    )


def test_pruned_program_runs_with_jit_parity():
    """The pruned proof table still drives a correct JIT compile."""
    prog = _eq_dispatch_prog(8, 8)
    vp = Verifier(runnable_registry(0), max_states=128).verify(prog)
    for seed in (1, 2):
        vm_i, r0_i = _run(prog, vp, "interp", b"", seed=seed)
        vm_j, r0_j = _run(prog, vp, "jit", b"", seed=seed)
        assert _observable(vm_i, r0_i) == _observable(vm_j, r0_j)


def test_compiled_program_metadata():
    case = get_case("nf_cm_sketch")
    reg = runnable_registry(0)
    vp = Verifier(reg).verify(case.prog)
    compiled = compile_program(case.prog, vp, reg)
    assert isinstance(compiled, CompiledProgram)
    assert compiled.prog_hash == program_hash(case.prog)
    assert compiled.elide_checks is True
    # The 3-trip back-edge at pc 12 expands into 4 body copies.
    assert compiled.unrolled == {12: 4}
    assert compiled.n_nodes > 4
    assert compiled.source.startswith("def _jit_nf_cm_sketch")
