"""NF degradation policies: flow-table overflow, sketch aging, Maglev."""

import pytest

from repro.ebpf.maps import MapFullError
from repro.ebpf.runtime import BpfRuntime
from repro.faults import FaultPlan
from repro.net.flowgen import FlowGenerator
from repro.net.packet import XdpAction
from repro.net.xdp import XdpPipeline
from repro.nfs import CountMinNF, FlowMonitorNF, MaglevNF, SketchDegradation


def overflow_trace(n_flows, packets_per_flow=2, seed=9):
    """More distinct flows than the monitor's map can hold."""
    fg = FlowGenerator(n_flows=n_flows, seed=seed, distribution="round_robin")
    return fg.trace(n_flows * packets_per_flow)


class TestFlowMonitorOverflow:
    """Satellite: LRU eviction vs hash rejection when max_entries overflows."""

    def test_hash_map_aborts_on_overflow(self):
        nf = FlowMonitorNF(BpfRuntime(), max_entries=64, map_type="hash",
                           on_full="abort")
        result = XdpPipeline(nf).run(overflow_trace(256))
        # First 64 flows fit; later new flows abort on every packet.
        assert result.aborted > 0
        assert result.errors.get("MapFullError", 0) == result.aborted
        assert nf.n_flows == 64
        assert result.n_packets == result.forwarded + result.dropped + result.aborted

    def test_hash_map_drop_policy_degrades_gracefully(self):
        nf = FlowMonitorNF(BpfRuntime(), max_entries=64, map_type="hash",
                           on_full="drop")
        result = XdpPipeline(nf).run(overflow_trace(256))
        assert result.aborted == 0
        assert result.dropped > 0
        assert nf.rejected == result.dropped
        assert nf.n_flows == 64

    def test_lru_fallback_policy_tracks_overflow_flows(self):
        nf = FlowMonitorNF(BpfRuntime(), max_entries=64, map_type="hash",
                           on_full="fallback", fallback_entries=16)
        result = XdpPipeline(nf).run(overflow_trace(256))
        assert result.aborted == 0
        assert result.dropped == 0          # fallback forwards, never drops
        assert nf.fallback_hits > 0
        assert nf.rejected == nf.fallback_hits
        assert len(nf.fallback) <= 16

    def test_lru_map_evicts_instead_of_rejecting(self):
        nf = FlowMonitorNF(BpfRuntime(), max_entries=64, map_type="lru",
                           on_full="abort")
        result = XdpPipeline(nf).run(overflow_trace(256))
        assert result.aborted == 0          # eviction means no failures
        assert nf.evictions > 0
        assert nf.n_flows == 64

    @pytest.mark.parametrize("map_type", ["percpu", "lru_percpu"])
    def test_percpu_variants_match_their_base_semantics(self, map_type):
        nf = FlowMonitorNF(BpfRuntime(), max_entries=64, map_type=map_type,
                           on_full="drop")
        result = XdpPipeline(nf).run(overflow_trace(256))
        assert result.n_packets == 512
        if map_type == "percpu":
            assert nf.rejected > 0 and nf.evictions == 0
        else:
            assert nf.rejected == 0 and nf.evictions > 0
        assert result.aborted == 0

    def test_counts_survive_for_established_flows(self):
        nf = FlowMonitorNF(BpfRuntime(), max_entries=512, map_type="hash",
                           on_full="drop")
        trace = overflow_trace(128, packets_per_flow=4)
        XdpPipeline(nf).run(trace)
        assert nf.count_of(trace[0].key_int) == 4

    def test_injected_map_faults_hit_monitor(self):
        plan = FaultPlan(map_full_rate=0.5, seed=4)
        nf = FlowMonitorNF(BpfRuntime(), max_entries=10_000,
                           map_type="hash", on_full="drop")
        result = XdpPipeline(nf, faults=plan.injector()).run(
            overflow_trace(128)
        )
        assert nf.rejected > 0              # injection, not capacity
        assert result.aborted == 0

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            FlowMonitorNF(BpfRuntime(), map_type="tree")
        with pytest.raises(ValueError):
            FlowMonitorNF(BpfRuntime(), on_full="explode")


class TestSketchDegradation:
    def make_nf(self, policy, threshold=100, cap=None):
        degrade = SketchDegradation(threshold, policy=policy, cap=cap)
        return CountMinNF(BpfRuntime(), depth=2, width=64, degrade=degrade)

    def test_halve_decays_counters(self):
        nf = self.make_nf("halve")
        fg = FlowGenerator(n_flows=4, seed=2)
        XdpPipeline(nf).run(fg.trace(100))
        assert nf.degrade.events == 1
        assert sum(map(sum, nf.rows)) < 100 * nf.depth

    def test_reset_zeroes_sketch(self):
        nf = self.make_nf("reset")
        fg = FlowGenerator(n_flows=4, seed=2)
        XdpPipeline(nf).run(fg.trace(100))
        assert nf.degrade.events == 1
        assert sum(map(sum, nf.rows)) == 0

    def test_clamp_caps_counters(self):
        nf = self.make_nf("clamp", threshold=100, cap=10)
        fg = FlowGenerator(n_flows=1, seed=2)   # one flow hammers one cell
        XdpPipeline(nf).run(fg.trace(100))
        assert max(map(max, nf.rows)) <= 10

    def test_fires_every_threshold(self):
        nf = self.make_nf("halve", threshold=50)
        fg = FlowGenerator(n_flows=8, seed=2)
        XdpPipeline(nf).run_batch(fg.trace(500), batch_size=64)
        assert nf.degrade.events >= 7

    def test_no_policy_no_change(self):
        fg = FlowGenerator(n_flows=8, seed=2)
        t = fg.trace(200)
        plain = CountMinNF(BpfRuntime(), depth=2, width=64)
        XdpPipeline(plain).run(t)
        with_policy = CountMinNF(
            BpfRuntime(), depth=2, width=64,
            degrade=SketchDegradation(10**9),
        )
        XdpPipeline(with_policy).run(t)
        # Never-firing policy: bit-identical state and cycles.
        assert with_policy.rows == plain.rows
        assert with_policy.rt.cycles.total == plain.rt.cycles.total

    def test_validation(self):
        with pytest.raises(ValueError):
            SketchDegradation(0)
        with pytest.raises(ValueError):
            SketchDegradation(10, policy="explode")
        with pytest.raises(ValueError):
            SketchDegradation(10, cap=-1)


class TestMaglevFailover:
    def test_fail_backend_rehashes_over_survivors(self):
        nf = MaglevNF(BpfRuntime())
        victim = nf.all_backends[0]
        nf.fail_backend(victim)
        assert nf.rehashes == 1
        assert victim not in nf.healthy_backends
        fg = FlowGenerator(n_flows=64, seed=3)
        XdpPipeline(nf).run(fg.trace(500))
        assert nf.dispatched[victim] == 0

    def test_failover_is_minimally_disruptive(self):
        healthy = MaglevNF(BpfRuntime())
        failed = MaglevNF(BpfRuntime())
        victim = failed.all_backends[0]
        failed.fail_backend(victim)
        moved = 0
        kept = 0
        for key in range(2000):
            before = healthy.table.lookup(key)
            after = failed.table.lookup(key)
            if before == victim:
                assert after != victim
            elif before == after:
                kept += 1
            else:
                moved += 1
        # Maglev's guarantee: healthy backends keep almost all flows.
        assert moved / (moved + kept) < 0.2

    def test_restore_backend(self):
        nf = MaglevNF(BpfRuntime())
        victim = nf.all_backends[2]
        nf.fail_backend(victim)
        nf.restore_backend(victim)
        assert nf.rehashes == 2
        assert victim in nf.healthy_backends

    def test_idempotent_and_validated(self):
        nf = MaglevNF(BpfRuntime())
        nf.fail_backend(nf.all_backends[0])
        nf.fail_backend(nf.all_backends[0])   # no-op, no extra rehash
        assert nf.rehashes == 1
        nf.restore_backend(nf.all_backends[1])  # not failed: no-op
        assert nf.rehashes == 1
        with pytest.raises(ValueError):
            nf.fail_backend("nonexistent")

    def test_cannot_fail_every_backend(self):
        nf = MaglevNF(BpfRuntime(), backends=("only",), table_size=13)
        with pytest.raises(ValueError):
            nf.fail_backend("only")
