"""Tests for EFD load balancing, TSS classification, and HeavyKeeper."""

import pytest

from repro.analysis.experiments import make_rules_for_flows
from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.packet import XdpAction
from repro.net.xdp import XdpPipeline
from repro.nfs import EfdLoadBalancerNF, HeavyKeeperNF, TssClassifierNF


def rt_for(mode, seed=1):
    return BpfRuntime(mode=mode, seed=seed)


class TestEfdNF:
    def test_bound_flows_reach_their_targets(self):
        nf = EfdLoadBalancerNF(rt_for(ExecMode.ENETSTL), n_groups=256)
        fg = FlowGenerator(200, seed=6)
        placed = nf.bind_flows((f.key_int for f in fg.flows), lambda k: k % 4)
        assert placed == 200
        for f in fg.flows:
            assert nf.lookup(f.key_int) == f.key_int % 4

    def test_traffic_spread_across_backends(self):
        nf = EfdLoadBalancerNF(rt_for(ExecMode.ENETSTL), n_groups=256)
        fg = FlowGenerator(200, seed=6)
        nf.bind_flows((f.key_int for f in fg.flows), lambda k: k % 4)
        result = XdpPipeline(nf).run(fg.trace(400))
        assert result.actions == {XdpAction.REDIRECT: 400}
        assert sum(nf.dispatched) == 400
        assert all(d > 0 for d in nf.dispatched)

    def test_mode_cost_ordering(self):
        fg = FlowGenerator(128, seed=6)
        trace = fg.trace(200)
        totals = {}
        for mode in ExecMode:
            nf = EfdLoadBalancerNF(rt_for(mode), n_groups=256)
            nf.bind_flows((f.key_int for f in fg.flows), lambda k: k % 4)
            totals[mode] = XdpPipeline(nf).run(trace).cycles_per_packet
        assert totals[ExecMode.PURE_EBPF] > totals[ExecMode.ENETSTL]
        assert totals[ExecMode.ENETSTL] > totals[ExecMode.KERNEL]


class TestTssNF:
    def _loaded(self, mode, n_rules=256):
        nf = TssClassifierNF(rt_for(mode))
        fg = FlowGenerator(512, seed=7)
        nf.install_rules(make_rules_for_flows(fg.flows[:n_rules]))
        return nf, fg

    def test_rule_flows_match(self):
        nf, fg = self._loaded(ExecMode.ENETSTL)
        # Traffic restricted to flows that have rules.
        fg.flows = fg.flows[:256]
        result = XdpPipeline(nf).run(fg.trace(200))
        assert result.actions == {XdpAction.PASS: 200}
        assert nf.matched == 200

    def test_tuple_count_matches_masks(self):
        nf, _ = self._loaded(ExecMode.KERNEL)
        assert nf.classifier.n_tuples == 8

    def test_classify_returns_best_priority(self):
        nf, fg = self._loaded(ExecMode.KERNEL)
        hit = nf.classify(fg.flows[0])
        assert hit is not None and hit.action == "permit"

    def test_empty_ruleset_drops(self):
        nf = TssClassifierNF(rt_for(ExecMode.ENETSTL))
        fg = FlowGenerator(8, seed=7)
        result = XdpPipeline(nf).run(fg.trace(20))
        assert result.actions == {XdpAction.DROP: 20}

    def test_mode_cost_ordering(self):
        totals = {}
        for mode in ExecMode:
            nf, fg = self._loaded(mode)
            totals[mode] = XdpPipeline(nf).run(fg.trace(150)).cycles_per_packet
        assert totals[ExecMode.PURE_EBPF] > totals[ExecMode.ENETSTL]
        assert totals[ExecMode.ENETSTL] > totals[ExecMode.KERNEL]


class TestHeavyKeeperNF:
    def test_finds_elephants_in_zipf_traffic(self):
        nf = HeavyKeeperNF(rt_for(ExecMode.ENETSTL, seed=8), k=16)
        fg = FlowGenerator(512, seed=8, distribution="zipf", zipf_s=1.3)
        XdpPipeline(nf).run(fg.trace(6000))
        top_keys = [k for _, k in nf.topk()[:4]]
        # The head of the zipf population should dominate the top-k.
        heavy = {f.key_int for f in fg.flows[:8]}
        assert sum(1 for k in top_keys if k in heavy) >= 3

    def test_estimates_track_heavy_flows(self):
        nf = HeavyKeeperNF(rt_for(ExecMode.KERNEL, seed=8))
        fg = FlowGenerator(4, seed=8, distribution="round_robin")
        XdpPipeline(nf).run(fg.trace(800))
        for f in fg.flows:
            assert nf.estimate(f.key_int) >= 120   # true count 200, decay

    def test_processed_counter(self):
        nf = HeavyKeeperNF(rt_for(ExecMode.ENETSTL))
        fg = FlowGenerator(8, seed=1)
        XdpPipeline(nf).run(fg.trace(50))
        assert nf.processed == 50

    def test_mode_cost_ordering(self):
        fg = FlowGenerator(256, seed=8, distribution="zipf")
        trace = fg.trace(400)
        totals = {}
        for mode in ExecMode:
            nf = HeavyKeeperNF(rt_for(mode, seed=8))
            totals[mode] = XdpPipeline(nf).run(trace).cycles_per_packet
        assert totals[ExecMode.PURE_EBPF] > totals[ExecMode.ENETSTL]
        assert totals[ExecMode.ENETSTL] > totals[ExecMode.KERNEL]
