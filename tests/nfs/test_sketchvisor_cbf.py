"""Tests for the SketchVisor fast path and the counting Bloom filter."""

import pytest

from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.packet import XdpAction
from repro.net.xdp import XdpPipeline
from repro.nfs import CountingBloomNF, SketchVisorNF


def rt_for(mode, seed=1):
    return BpfRuntime(mode=mode, seed=seed)


class TestSketchVisorNF:
    def test_hot_flows_stay_in_fast_path(self):
        nf = SketchVisorNF(rt_for(ExecMode.ENETSTL), n_slots=16)
        fg = FlowGenerator(8, seed=10)         # 8 flows, 16 slots
        XdpPipeline(nf).run(fg.trace(800))
        assert nf.evictions == 0
        assert nf.fast_hits == 800 - 8         # first touch claims a slot

    def test_counts_are_exact_without_eviction(self):
        nf = SketchVisorNF(rt_for(ExecMode.KERNEL), n_slots=16)
        fg = FlowGenerator(4, seed=10, distribution="round_robin")
        XdpPipeline(nf).run(fg.trace(400))
        for f in fg.flows:
            assert nf.estimate(f.key_int) == 100

    def test_eviction_to_normal_path_preserves_counts(self):
        nf = SketchVisorNF(rt_for(ExecMode.ENETSTL), n_slots=4)
        fg = FlowGenerator(64, seed=10)        # far more flows than slots
        trace = fg.trace(1500)
        truth = {}
        for p in trace:
            truth[p.key_int | 1] = truth.get(p.key_int | 1, 0) + 1
        XdpPipeline(nf).run(trace)
        assert nf.evictions > 0
        for key, count in truth.items():
            assert nf.estimate(key) >= count   # CM residue only inflates

    def test_min_eviction_picks_smallest(self):
        nf = SketchVisorNF(rt_for(ExecMode.KERNEL), n_slots=2)
        fg = FlowGenerator(3, seed=11, distribution="round_robin")
        flows = fg.flows
        # Fill both slots: flow0 x5, flow1 x1.
        for pkt in [flows[0]] * 5 + [flows[1]]:
            nf.process(pkt)
        nf.process(flows[2])                   # evicts flow1 (min counter)
        assert flows[0].key_int | 1 in nf.keys
        assert flows[2].key_int | 1 in nf.keys
        assert flows[1].key_int | 1 not in nf.keys

    def test_mode_cost_ordering(self):
        fg = FlowGenerator(128, seed=10)
        trace = fg.trace(400)
        totals = {}
        for mode in ExecMode:
            nf = SketchVisorNF(rt_for(mode), n_slots=16)
            totals[mode] = XdpPipeline(nf).run(trace).cycles_per_packet
        assert totals[ExecMode.PURE_EBPF] > totals[ExecMode.ENETSTL]
        assert totals[ExecMode.ENETSTL] > totals[ExecMode.KERNEL]

    def test_validation(self):
        with pytest.raises(ValueError):
            SketchVisorNF(rt_for(ExecMode.KERNEL), n_slots=0)


class TestCountingBloomNF:
    def _loaded(self, mode):
        nf = CountingBloomNF(rt_for(mode))
        fg = FlowGenerator(256, seed=12)
        nf.populate(f.key_int for f in fg.flows)
        return nf, fg

    def test_members_pass(self):
        nf, fg = self._loaded(ExecMode.ENETSTL)
        result = XdpPipeline(nf).run(fg.trace(200))
        assert result.actions == {XdpAction.PASS: 200}

    def test_delete_actually_removes(self):
        nf = CountingBloomNF(rt_for(ExecMode.ENETSTL))
        nf.add(42)
        assert nf.contains(42)
        assert nf.remove(42)
        assert not nf.contains(42)

    def test_delete_absent_is_safe(self):
        nf = CountingBloomNF(rt_for(ExecMode.KERNEL))
        assert not nf.remove(999)
        assert all(c == 0 for c in nf.counters)   # no underflow

    def test_duplicate_inserts_need_matching_deletes(self):
        nf = CountingBloomNF(rt_for(ExecMode.ENETSTL))
        nf.add(7)
        nf.add(7)
        assert nf.remove(7)
        assert nf.contains(7)          # one insert remains
        assert nf.remove(7)
        assert not nf.contains(7)

    def test_foreign_flows_dropped(self):
        nf, _ = self._loaded(ExecMode.ENETSTL)
        foreign = FlowGenerator(128, seed=77)
        result = XdpPipeline(nf).run(foreign.trace(200))
        assert result.actions.get(XdpAction.DROP, 0) >= 190

    def test_mode_cost_ordering(self):
        totals = {}
        for mode in ExecMode:
            nf, fg = self._loaded(mode)
            totals[mode] = XdpPipeline(nf).run(fg.trace(200)).cycles_per_packet
        assert totals[ExecMode.PURE_EBPF] > totals[ExecMode.ENETSTL]
        assert totals[ExecMode.ENETSTL] > totals[ExecMode.KERNEL]

    def test_validation(self):
        with pytest.raises(ValueError):
            CountingBloomNF(rt_for(ExecMode.KERNEL), width=0)
