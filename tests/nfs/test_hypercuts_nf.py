"""Tests for the HyperCuts NF — the second Table 1 ✓ reproduction."""

from repro.analysis.experiments import make_rules_for_flows
from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.packet import XdpAction
from repro.net.xdp import XdpPipeline
from repro.nfs import HyperCutsNF


def build(mode, n_rules=256, seed=14):
    fg = FlowGenerator(512, seed=seed)
    rules = make_rules_for_flows(fg.flows[:n_rules])
    nf = HyperCutsNF(BpfRuntime(mode=mode, seed=seed), rules)
    return nf, fg


class TestHyperCutsNF:
    def test_rule_flows_pass(self):
        nf, fg = build(ExecMode.PURE_EBPF)
        fg.flows = fg.flows[:256]
        result = XdpPipeline(nf).run(fg.trace(300))
        assert result.actions == {XdpAction.PASS: 300}
        assert nf.matched == 300

    def test_foreign_flows_dropped(self):
        nf, _ = build(ExecMode.PURE_EBPF)
        foreign = FlowGenerator(64, seed=99)
        result = XdpPipeline(nf).run(foreign.trace(100))
        assert result.actions.get(XdpAction.DROP, 0) >= 99

    def test_no_meaningful_degradation_in_ebpf(self):
        """The Table 1 checkmark: tree walks cost the same everywhere."""
        cycles = {}
        fg = FlowGenerator(512, seed=14)
        trace = fg.trace(300)
        for mode in ExecMode:
            nf, _ = build(mode)
            cycles[mode] = XdpPipeline(nf).run(trace).cycles_per_packet
        degradation = 1 - cycles[ExecMode.KERNEL] / cycles[ExecMode.PURE_EBPF]
        improvement = cycles[ExecMode.PURE_EBPF] / cycles[ExecMode.ENETSTL] - 1
        assert degradation < 0.10
        assert improvement < 0.10

    def test_same_verdicts_across_modes(self):
        fg = FlowGenerator(512, seed=14)
        trace = fg.trace(150)
        verdicts = []
        for mode in ExecMode:
            nf, _ = build(mode)
            result = XdpPipeline(nf).run(trace)
            verdicts.append(result.actions)
        assert verdicts[0] == verdicts[1] == verdicts[2]
