"""Tests for the §4.5 extension NFs: LRU cache, d-ary cuckoo, Bloom."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.packet import XdpAction
from repro.net.xdp import XdpPipeline
from repro.nfs import (
    BloomFilterNF,
    DaryCuckooNF,
    ElasticSketchNF,
    LruCacheNF,
    UnsupportedVariantError,
)
from repro.datastructs.dary_cuckoo import DaryCuckooTable


def rt_for(mode, seed=1):
    return BpfRuntime(mode=mode, seed=seed)


class TestLruCacheNF:
    def test_no_ebpf_variant(self):
        with pytest.raises(UnsupportedVariantError):
            LruCacheNF(rt_for(ExecMode.PURE_EBPF))

    def test_put_get(self):
        lru = LruCacheNF(rt_for(ExecMode.ENETSTL), capacity=8)
        assert lru.put(1, b"one")
        assert lru.get(1)[:3] == b"one"
        assert lru.get(2) is None

    def test_eviction_order_is_lru(self):
        lru = LruCacheNF(rt_for(ExecMode.ENETSTL), capacity=3)
        for k in (1, 2, 3):
            lru.put(k, b"v")
        lru.get(1)            # 1 is now most recent; 2 is LRU
        lru.put(4, b"v")      # evicts 2
        assert lru.get(2) is None
        assert lru.get(1) is not None
        assert lru.evictions == 1

    def test_recency_list_matches_access_order(self):
        lru = LruCacheNF(rt_for(ExecMode.ENETSTL), capacity=4)
        for k in (1, 2, 3, 4):
            lru.put(k, b"v")
        lru.get(2)
        assert lru.recency_keys() == [2, 4, 3, 1]

    def test_put_existing_refreshes(self):
        lru = LruCacheNF(rt_for(ExecMode.ENETSTL), capacity=2)
        lru.put(1, b"a")
        lru.put(2, b"b")
        lru.put(1, b"c")      # refresh: 2 becomes LRU
        lru.put(3, b"d")      # evicts 2
        assert lru.get(1)[:1] == b"c"
        assert lru.get(2) is None

    def test_capacity_bound_holds(self):
        lru = LruCacheNF(rt_for(ExecMode.ENETSTL), capacity=16)
        for k in range(200):
            lru.put(k, b"v")
        assert len(lru) == 16
        assert lru.evictions == 184

    def test_no_leaked_wrapper_references(self):
        lru = LruCacheNF(rt_for(ExecMode.ENETSTL), capacity=32)
        for k in range(100):
            lru.put(k, b"v")
            lru.get(k // 2)
        for node in lru.proxy:
            if node not in (lru.head, lru.tail):
                assert node.refcount == 0

    def test_process_caches_flows(self):
        lru = LruCacheNF(rt_for(ExecMode.ENETSTL), capacity=64)
        fg = FlowGenerator(16, seed=3)
        result = XdpPipeline(lru).run(fg.trace(300))
        # First touch per flow misses, the rest hit.
        assert result.actions[XdpAction.DROP] == 16
        assert result.actions[XdpAction.PASS] == 284

    def test_kernel_cheaper_than_enetstl(self):
        fg = FlowGenerator(64, seed=3)
        trace = fg.trace(300)
        totals = {}
        for mode in (ExecMode.KERNEL, ExecMode.ENETSTL):
            nf = LruCacheNF(rt_for(mode), capacity=32)
            totals[mode] = XdpPipeline(nf).run(trace).cycles_per_packet
        assert totals[ExecMode.KERNEL] < totals[ExecMode.ENETSTL]

    @given(st.lists(st.integers(1, 20), min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_lru(self, accesses):
        from collections import OrderedDict

        capacity = 6
        lru = LruCacheNF(rt_for(ExecMode.ENETSTL), capacity=capacity)
        ref = OrderedDict()
        for key in accesses:
            if lru.get(key) is not None:
                ref.move_to_end(key, last=False)
                continue
            lru.put(key, b"v")
            if len(ref) >= capacity and key not in ref:
                ref.popitem(last=True)
            ref[key] = True
            ref.move_to_end(key, last=False)
        assert lru.recency_keys() == list(ref.keys())


class TestDaryCuckooTable:
    def test_insert_lookup_delete(self):
        t = DaryCuckooTable(d=4, width=64)
        assert t.insert(5, "v")
        assert t.lookup(5) == "v"
        assert t.delete(5)
        assert t.lookup(5) is None

    def test_zero_key_reserved(self):
        t = DaryCuckooTable()
        with pytest.raises(ValueError):
            t.insert(0, "v")

    def test_displacement_preserves_entries(self):
        t = DaryCuckooTable(d=2, width=16, seed=5)
        placed = [k for k in range(1, 25) if t.insert(k, k)]
        for k in placed:
            assert t.lookup(k) == k

    def test_failed_insert_rolls_back(self):
        t = DaryCuckooTable(d=2, width=4, seed=5)
        placed = [k for k in range(1, 30) if t.insert(k, k)]
        # Regardless of failures, every placed key is still there.
        for k in placed:
            assert t.lookup(k) == k
        assert len(t) == len(placed)

    @given(st.sets(st.integers(1, 10_000), max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_matches_set_reference(self, keys):
        t = DaryCuckooTable(d=4, width=256)
        placed = {k for k in keys if t.insert(k, k * 2)}
        for k in placed:
            assert t.lookup(k) == k * 2
        assert len(t) == len(placed)


class TestDaryCuckooNF:
    def _loaded(self, mode, n=500):
        nf = DaryCuckooNF(rt_for(mode), d=4, width=2048)
        fg = FlowGenerator(n, seed=6)
        nf.populate(f.key_int for f in fg.flows)
        return nf, fg

    def test_hits_for_resident_flows(self):
        nf, fg = self._loaded(ExecMode.ENETSTL)
        result = XdpPipeline(nf).run(fg.trace(200))
        assert result.actions == {XdpAction.TX: 200}

    def test_ebpf_and_enetstl_agree_functionally(self):
        a, fg = self._loaded(ExecMode.PURE_EBPF)
        b, _ = self._loaded(ExecMode.ENETSTL)
        for f in fg.flows[:100]:
            key = f.key_int | 1
            assert (a.lookup(key) is None) == (b.lookup(key) is None)

    def test_mode_cost_ordering(self):
        totals = {}
        for mode in ExecMode:
            nf, fg = self._loaded(mode)
            totals[mode] = XdpPipeline(nf).run(fg.trace(200)).cycles_per_packet
        assert totals[ExecMode.PURE_EBPF] > totals[ExecMode.ENETSTL]
        assert totals[ExecMode.ENETSTL] > totals[ExecMode.KERNEL]


class TestElasticSketchNF:
    def test_estimates_track_truth(self):
        nf = ElasticSketchNF(rt_for(ExecMode.ENETSTL), heavy_buckets=512)
        fg = FlowGenerator(64, seed=8, distribution="zipf")
        trace = fg.trace(3000)
        truth = {}
        for p in trace:
            truth[p.key_int] = truth.get(p.key_int, 0) + 1
        XdpPipeline(nf).run(trace)
        for key, count in truth.items():
            assert nf.estimate(key) >= count

    def test_heavy_path_dominates_for_elephants(self):
        nf = ElasticSketchNF(rt_for(ExecMode.KERNEL), heavy_buckets=1024)
        fg = FlowGenerator(32, seed=8)
        XdpPipeline(nf).run(fg.trace(1000))
        # Few flows, many buckets: nearly everything stays heavy.
        assert nf.paths["heavy"] >= 950

    def test_mode_cost_ordering(self):
        fg = FlowGenerator(256, seed=8, distribution="zipf")
        trace = fg.trace(400)
        totals = {}
        for mode in ExecMode:
            nf = ElasticSketchNF(rt_for(mode), heavy_buckets=64)
            totals[mode] = XdpPipeline(nf).run(trace).cycles_per_packet
        assert totals[ExecMode.PURE_EBPF] > totals[ExecMode.ENETSTL]
        assert totals[ExecMode.ENETSTL] > totals[ExecMode.KERNEL]

    def test_light_path_engaged_under_pressure(self):
        nf = ElasticSketchNF(rt_for(ExecMode.ENETSTL), heavy_buckets=8)
        fg = FlowGenerator(512, seed=8)
        XdpPipeline(nf).run(fg.trace(1500))
        assert nf.paths["light"] + nf.paths["evict"] > 100


class TestBloomFilterNF:
    def _loaded(self, mode):
        nf = BloomFilterNF(rt_for(mode), n_bits=1 << 16, n_hashes=4)
        fg = FlowGenerator(512, seed=7)
        nf.populate(f.key_int for f in fg.flows)
        return nf, fg

    def test_no_false_negatives(self):
        nf, fg = self._loaded(ExecMode.ENETSTL)
        result = XdpPipeline(nf).run(fg.trace(300))
        assert result.actions == {XdpAction.PASS: 300}

    def test_foreign_flows_mostly_dropped(self):
        nf, _ = self._loaded(ExecMode.ENETSTL)
        foreign = FlowGenerator(256, seed=99)
        result = XdpPipeline(nf).run(foreign.trace(300))
        assert result.actions.get(XdpAction.DROP, 0) >= 280

    def test_costed_add_visible_to_contains(self):
        nf = BloomFilterNF(rt_for(ExecMode.ENETSTL))
        nf.add(12345)
        assert nf.contains(12345)

    def test_modes_agree_functionally(self):
        a, fg = self._loaded(ExecMode.PURE_EBPF)
        b, _ = self._loaded(ExecMode.ENETSTL)
        for f in fg.flows[:64]:
            assert a.contains(f.key_int) == b.contains(f.key_int)

    def test_mode_cost_ordering(self):
        totals = {}
        for mode in ExecMode:
            nf, fg = self._loaded(mode)
            totals[mode] = XdpPipeline(nf).run(fg.trace(200)).cycles_per_packet
        assert totals[ExecMode.PURE_EBPF] > totals[ExecMode.ENETSTL]
        assert totals[ExecMode.ENETSTL] > totals[ExecMode.KERNEL]

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilterNF(rt_for(ExecMode.KERNEL), n_bits=100)
        with pytest.raises(ValueError):
            BloomFilterNF(rt_for(ExecMode.KERNEL), n_hashes=0)
