"""Tests for the sketching NFs: Count-min and NitroSketch."""

import pytest

from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.packet import XdpAction
from repro.net.xdp import XdpPipeline
from repro.nfs import CountMinNF, NitroSketchNF


def rt_for(mode, seed=1):
    return BpfRuntime(mode=mode, seed=seed)


class TestCountMinNF:
    def test_estimates_never_underestimate(self):
        rt = rt_for(ExecMode.ENETSTL)
        nf = CountMinNF(rt, depth=4, width=1024)
        fg = FlowGenerator(64, seed=2)
        trace = fg.trace(2000)
        truth = {}
        for p in trace:
            truth[p.key_int] = truth.get(p.key_int, 0) + 1
        XdpPipeline(nf).run(trace)
        for key, count in truth.items():
            assert nf.true_free_estimate(key) >= count

    def test_estimates_close_with_wide_sketch(self):
        rt = rt_for(ExecMode.ENETSTL)
        nf = CountMinNF(rt, depth=4, width=8192)
        fg = FlowGenerator(32, seed=2)
        trace = fg.trace(1000)
        truth = {}
        for p in trace:
            truth[p.key_int] = truth.get(p.key_int, 0) + 1
        XdpPipeline(nf).run(trace)
        for key, count in truth.items():
            assert nf.true_free_estimate(key) <= count + 5

    def test_all_packets_dropped(self):
        nf = CountMinNF(rt_for(ExecMode.PURE_EBPF))
        fg = FlowGenerator(8, seed=1)
        result = XdpPipeline(nf).run(fg.trace(50))
        assert result.actions == {XdpAction.DROP: 50}
        assert nf.total == 50

    def test_crc_cutover_for_shallow_sketches(self):
        """depth <= 2 uses per-row CRC instead of the SIMD batch."""
        shallow = rt_for(ExecMode.ENETSTL)
        CountMinNF(shallow, depth=1).process(
            FlowGenerator(2, seed=1).trace(1)[0]
        )
        costs = shallow.costs
        # A SIMD batch would charge hash_simd_setup; CRC path must not.
        assert shallow.cycles.total < (
            costs.xdp_dispatch  # no pipeline here, but keep it simple
            + costs.map_lookup
            + costs.hash_simd_setup
            + costs.hash_simd_lane
            + 50
        )

    def test_mode_cost_ordering_deep_sketch(self):
        totals = {}
        fg = FlowGenerator(16, seed=1)
        trace = fg.trace(200)
        for mode in ExecMode:
            nf = CountMinNF(rt_for(mode), depth=8)
            totals[mode] = XdpPipeline(nf).run(trace).cycles_per_packet
        assert totals[ExecMode.PURE_EBPF] > totals[ExecMode.ENETSTL]
        assert totals[ExecMode.ENETSTL] >= totals[ExecMode.KERNEL]

    def test_deeper_sketch_costs_more(self):
        fg = FlowGenerator(16, seed=1)
        trace = fg.trace(100)
        shallow = XdpPipeline(CountMinNF(rt_for(ExecMode.PURE_EBPF), depth=2)).run(trace)
        deep = XdpPipeline(CountMinNF(rt_for(ExecMode.PURE_EBPF), depth=8)).run(trace)
        assert deep.cycles_per_packet > shallow.cycles_per_packet

    def test_costed_estimate_matches_free_estimate(self):
        nf = CountMinNF(rt_for(ExecMode.ENETSTL), depth=4)
        fg = FlowGenerator(16, seed=1)
        trace = fg.trace(300)
        XdpPipeline(nf).run(trace)
        key = trace[0].key_int
        assert nf.estimate(key) == nf.true_free_estimate(key)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            CountMinNF(rt_for(ExecMode.KERNEL), depth=0)


class TestNitroSketchNF:
    def test_unbiased_estimates_at_scale(self):
        """E[estimate] tracks the true count (1/p scaling)."""
        rt = rt_for(ExecMode.ENETSTL, seed=4)
        nf = NitroSketchNF(rt, depth=8, width=4096, update_prob=0.25)
        fg = FlowGenerator(4, seed=4, distribution="round_robin")
        trace = fg.trace(8000)    # 2000 packets per flow
        XdpPipeline(nf).run(trace)
        for flow in fg.flows:
            estimate = nf.estimate(flow.key_int)
            assert estimate == pytest.approx(2000, rel=0.30)

    def test_p_one_updates_every_row(self):
        rt = rt_for(ExecMode.ENETSTL, seed=4)
        nf = NitroSketchNF(rt, depth=4, width=2048, update_prob=1.0)
        fg = FlowGenerator(2, seed=1, distribution="round_robin")
        XdpPipeline(nf).run(fg.trace(100))
        assert nf.estimate(fg.flows[0].key_int) == pytest.approx(50, abs=5)

    def test_ebpf_sampling_rate_respected(self):
        rt = rt_for(ExecMode.PURE_EBPF, seed=4)
        nf = NitroSketchNF(rt, depth=8, width=4096, update_prob=0.25)
        fg = FlowGenerator(4, seed=4, distribution="round_robin")
        XdpPipeline(nf).run(fg.trace(4000))
        est = nf.estimate(fg.flows[0].key_int)
        assert est == pytest.approx(1000, rel=0.4)

    def test_lower_probability_cheaper(self):
        fg = FlowGenerator(16, seed=1)
        trace = fg.trace(400)
        costs = {}
        for p in (1 / 64, 1.0):
            nf = NitroSketchNF(rt_for(ExecMode.ENETSTL, seed=2), update_prob=p)
            costs[p] = XdpPipeline(nf).run(trace).cycles_per_packet
        assert costs[1 / 64] < costs[1.0]

    def test_mode_cost_ordering(self):
        fg = FlowGenerator(16, seed=1)
        trace = fg.trace(300)
        totals = {}
        for mode in ExecMode:
            nf = NitroSketchNF(rt_for(mode, seed=2), update_prob=0.5)
            totals[mode] = XdpPipeline(nf).run(trace).cycles_per_packet
        assert totals[ExecMode.PURE_EBPF] > totals[ExecMode.ENETSTL]
        assert totals[ExecMode.ENETSTL] > totals[ExecMode.KERNEL]

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            NitroSketchNF(rt_for(ExecMode.KERNEL), update_prob=0.0)
        with pytest.raises(ValueError):
            NitroSketchNF(rt_for(ExecMode.KERNEL), update_prob=1.5)
