"""Tests for the key-value-query NFs: skip-list KV and CuckooSwitch."""

import pytest

from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.packet import XdpAction
from repro.net.xdp import XdpPipeline
from repro.nfs import CuckooSwitchNF, SkipListKV, UnsupportedVariantError
from repro.nfs.kv_skiplist import OP_LOOKUP, OP_UPDATE_DELETE

MASK64 = (1 << 64) - 1


def rt_for(mode, seed=1):
    return BpfRuntime(mode=mode, seed=seed)


class TestSkipListKV:
    def test_no_ebpf_variant(self):
        """The paper's P1: skip lists are infeasible in pure eBPF."""
        with pytest.raises(UnsupportedVariantError):
            SkipListKV(rt_for(ExecMode.PURE_EBPF))

    def test_insert_lookup_delete(self):
        nf = SkipListKV(rt_for(ExecMode.ENETSTL))
        assert nf.insert(42, b"value")
        assert nf.lookup(42)[:5] == b"value"
        assert nf.delete(42)
        assert nf.lookup(42) is None
        assert not nf.delete(42)

    def test_insert_updates_value(self):
        nf = SkipListKV(rt_for(ExecMode.ENETSTL))
        nf.insert(7, b"a")
        nf.insert(7, b"b")
        assert nf.lookup(7)[:1] == b"b"
        assert len(nf) == 1

    def test_population_consistent(self):
        nf = SkipListKV(rt_for(ExecMode.ENETSTL))
        keys = [k * 104729 + 11 for k in range(300)]
        nf.preload(keys)
        assert len(nf) == 300
        assert all(nf.lookup(k & MASK64) is not None for k in keys)
        for k in keys[:100]:
            assert nf.delete(k & MASK64)
        assert len(nf) == 200

    def test_alloc_failure_path(self):
        nf = SkipListKV(rt_for(ExecMode.ENETSTL))
        nf.wrapper.fail_next_alloc()
        assert not nf.insert(1, b"x")
        assert nf.lookup(1) is None

    def test_no_leaked_references_after_ops(self):
        """All search references are returned: node refcounts drop back
        to zero (the proxy being the only anchor)."""
        nf = SkipListKV(rt_for(ExecMode.ENETSTL))
        keys = list(range(0, 2000, 17))
        nf.preload(keys)
        for k in keys[::3]:
            nf.lookup(k)
        for k in keys[::5]:
            nf.delete(k)
        for node in nf.proxy:
            if node is not nf.head:
                assert node.refcount == 0

    def test_process_lookup_mix(self):
        rt = rt_for(ExecMode.ENETSTL)
        nf = SkipListKV(rt, op_mix=OP_LOOKUP)
        fg = FlowGenerator(64, seed=2)
        nf.preload(f.key_int & MASK64 for f in fg.flows)
        result = XdpPipeline(nf).run(fg.trace(100))
        assert result.actions == {XdpAction.DROP: 100}

    def test_process_update_delete_mix_keeps_size_bounded(self):
        rt = rt_for(ExecMode.ENETSTL)
        nf = SkipListKV(rt, op_mix=OP_UPDATE_DELETE)
        fg = FlowGenerator(64, seed=2)
        XdpPipeline(nf).run(fg.trace(400))
        assert len(nf) <= 64

    def test_kernel_variant_functionally_identical(self):
        enet = SkipListKV(rt_for(ExecMode.ENETSTL, seed=3))
        kern = SkipListKV(rt_for(ExecMode.KERNEL, seed=3))
        keys = [k * 31 for k in range(100)]
        for nf in (enet, kern):
            nf.preload(keys)
        assert all(
            (enet.lookup(k) is None) == (kern.lookup(k) is None)
            for k in range(0, 3200, 7)
        )

    def test_kernel_faster_than_enetstl(self):
        totals = {}
        for mode in (ExecMode.KERNEL, ExecMode.ENETSTL):
            rt = rt_for(mode, seed=3)
            nf = SkipListKV(rt)
            nf.preload(range(0, 4096, 4))
            rt.cycles.reset()
            for k in range(0, 4096, 16):
                nf.lookup(k)
            totals[mode] = rt.cycles.total
        assert totals[ExecMode.KERNEL] < totals[ExecMode.ENETSTL]
        # ... but only by the per-step kfunc/refcount overhead (<15%).
        assert totals[ExecMode.ENETSTL] / totals[ExecMode.KERNEL] < 1.15

    def test_invalid_op_mix(self):
        with pytest.raises(ValueError):
            SkipListKV(rt_for(ExecMode.ENETSTL), op_mix="scan")

    def test_oversized_value_rejected(self):
        nf = SkipListKV(rt_for(ExecMode.ENETSTL))
        with pytest.raises(ValueError):
            nf.insert(1, b"x" * 200)


class TestCuckooSwitchNF:
    def _loaded(self, mode, n=500, seed=2):
        rt = rt_for(mode, seed=seed)
        nf = CuckooSwitchNF(rt, n_buckets=256)
        fg = FlowGenerator(n, seed=seed)
        nf.populate((f.key_int for f in fg.flows))
        return nf, fg

    def test_hits_for_resident_flows(self):
        nf, fg = self._loaded(ExecMode.ENETSTL)
        result = XdpPipeline(nf).run(fg.trace(200))
        assert result.actions == {XdpAction.TX: 200}
        assert nf.hits == 200 and nf.misses == 0

    def test_misses_for_foreign_flows(self):
        nf, _ = self._loaded(ExecMode.ENETSTL)
        foreign = FlowGenerator(64, seed=99)
        result = XdpPipeline(nf).run(foreign.trace(100))
        assert result.actions[XdpAction.DROP] >= 99   # fp collisions possible

    def test_lookup_returns_stored_value(self):
        rt = rt_for(ExecMode.KERNEL)
        nf = CuckooSwitchNF(rt, n_buckets=256)
        nf.populate([12345], value_of=lambda k: 777)
        assert nf.lookup(12345) == 777

    def test_mode_cost_ordering(self):
        totals = {}
        for mode in ExecMode:
            nf, fg = self._loaded(mode)
            result = XdpPipeline(nf).run(fg.trace(300))
            totals[mode] = result.cycles_per_packet
        assert totals[ExecMode.PURE_EBPF] > totals[ExecMode.ENETSTL]
        assert totals[ExecMode.ENETSTL] > totals[ExecMode.KERNEL]

    def test_cost_grows_with_load(self):
        costs = []
        for n in (200, 1800):
            nf, fg = self._loaded(ExecMode.PURE_EBPF, n=n)
            result = XdpPipeline(nf).run(fg.trace(300))
            costs.append(result.cycles_per_packet)
        assert costs[1] > costs[0]
