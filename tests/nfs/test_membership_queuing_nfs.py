"""Tests for membership (cuckoo filter, vBF) and queuing (time wheel,
Eiffel) NFs."""

import pytest

from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.packet import XdpAction
from repro.net.xdp import XdpPipeline
from repro.nfs import CuckooFilterNF, EiffelNF, TimeWheelNF, VbfNF


def rt_for(mode, seed=1):
    return BpfRuntime(mode=mode, seed=seed)


class TestCuckooFilterNF:
    def test_members_pass_nonmembers_drop(self):
        nf = CuckooFilterNF(rt_for(ExecMode.ENETSTL), n_buckets=1024)
        members = FlowGenerator(256, seed=2)
        nf.populate(f.key_int for f in members.flows)
        result = XdpPipeline(nf).run(members.trace(200))
        assert result.actions == {XdpAction.PASS: 200}
        foreign = FlowGenerator(256, seed=77)
        result = XdpPipeline(nf).run(foreign.trace(200))
        assert result.actions.get(XdpAction.DROP, 0) >= 195

    def test_counters(self):
        nf = CuckooFilterNF(rt_for(ExecMode.KERNEL), n_buckets=512)
        fg = FlowGenerator(64, seed=2)
        nf.populate(f.key_int for f in fg.flows)
        XdpPipeline(nf).run(fg.trace(100))
        assert nf.members == 100 and nf.nonmembers == 0

    def test_mode_cost_ordering(self):
        fg = FlowGenerator(512, seed=2)
        totals = {}
        for mode in ExecMode:
            nf = CuckooFilterNF(rt_for(mode), n_buckets=512)
            nf.populate(f.key_int for f in fg.flows)
            totals[mode] = XdpPipeline(nf).run(fg.trace(200)).cycles_per_packet
        assert totals[ExecMode.PURE_EBPF] > totals[ExecMode.ENETSTL]
        assert totals[ExecMode.ENETSTL] > totals[ExecMode.KERNEL]

    def test_higher_load_costs_more(self):
        costs = []
        for n in (200, 1900):
            fg = FlowGenerator(n, seed=2)
            nf = CuckooFilterNF(rt_for(ExecMode.PURE_EBPF), n_buckets=512)
            nf.populate(f.key_int for f in fg.flows)
            costs.append(XdpPipeline(nf).run(fg.trace(200)).cycles_per_packet)
        assert costs[1] > costs[0]


class TestVbfNF:
    def _loaded(self, mode):
        nf = VbfNF(rt_for(mode))
        fg = FlowGenerator(256, seed=3)
        for i, f in enumerate(fg.flows):
            nf.add_member(f.key_int, i % nf.vbf.n_sets)
        return nf, fg

    def test_members_classified(self):
        nf, fg = self._loaded(ExecMode.ENETSTL)
        result = XdpPipeline(nf).run(fg.trace(200))
        assert result.actions == {XdpAction.PASS: 200}

    def test_lookup_returns_correct_set(self):
        nf, fg = self._loaded(ExecMode.KERNEL)
        for i, f in enumerate(fg.flows[:50]):
            set_id = nf.lookup(f.key_int)
            # The true set must be among the candidates (lowest is
            # returned; false positives can only lower it).
            assert set_id is not None
            assert set_id <= i % nf.vbf.n_sets

    def test_nonmembers_mostly_dropped(self):
        nf, _ = self._loaded(ExecMode.ENETSTL)
        foreign = FlowGenerator(128, seed=55)
        result = XdpPipeline(nf).run(foreign.trace(200))
        assert result.actions.get(XdpAction.DROP, 0) >= 180

    def test_mode_cost_ordering(self):
        totals = {}
        for mode in ExecMode:
            nf, fg = self._loaded(mode)
            totals[mode] = XdpPipeline(nf).run(fg.trace(150)).cycles_per_packet
        assert totals[ExecMode.PURE_EBPF] > totals[ExecMode.ENETSTL]
        assert totals[ExecMode.ENETSTL] > totals[ExecMode.KERNEL]


class TestTimeWheelNF:
    def test_packets_eventually_transmitted(self):
        rt = rt_for(ExecMode.ENETSTL)
        nf = TimeWheelNF(rt, tick_ns=1000, delay_range_ns=50_000)
        fg = FlowGenerator(32, seed=4)
        XdpPipeline(nf).run(fg.trace(500, inter_arrival_ns=1000))
        # With delays <= 50us and 500us of trace, almost all drained.
        assert nf.dequeued >= 400
        assert nf.enqueued == 500

    def test_pacing_order_respects_timestamps(self):
        rt = rt_for(ExecMode.KERNEL)
        nf = TimeWheelNF(rt, tick_ns=100, delay_range_ns=10_000)
        fg = FlowGenerator(16, seed=4)
        XdpPipeline(nf).run(fg.trace(300, inter_arrival_ns=500))
        assert nf.pending == nf.enqueued - nf.dequeued

    def test_mode_cost_ordering(self):
        fg = FlowGenerator(32, seed=4)
        trace = fg.trace(400, inter_arrival_ns=1000)
        totals = {}
        for mode in ExecMode:
            nf = TimeWheelNF(rt_for(mode), tick_ns=1000)
            totals[mode] = XdpPipeline(nf).run(trace).cycles_per_packet
        assert totals[ExecMode.PURE_EBPF] > totals[ExecMode.ENETSTL]
        assert totals[ExecMode.ENETSTL] > totals[ExecMode.KERNEL]

    def test_finer_ticks_cost_more(self):
        fg = FlowGenerator(32, seed=4)
        trace = fg.trace(300, inter_arrival_ns=1000)
        fine = XdpPipeline(TimeWheelNF(rt_for(ExecMode.PURE_EBPF), tick_ns=250)).run(trace)
        coarse = XdpPipeline(TimeWheelNF(rt_for(ExecMode.PURE_EBPF), tick_ns=4000)).run(trace)
        assert fine.cycles_per_packet > coarse.cycles_per_packet


class TestEiffelNF:
    def test_enqueue_dequeue_balance(self):
        nf = EiffelNF(rt_for(ExecMode.ENETSTL), levels=2)
        fg = FlowGenerator(32, seed=5)
        result = XdpPipeline(nf).run(fg.trace(300))
        assert nf.enqueued == 300 and nf.dequeued == 300
        assert nf.pending == 0
        assert result.actions == {XdpAction.TX: 300}

    def test_more_levels_cost_more(self):
        fg = FlowGenerator(32, seed=5)
        trace = fg.trace(200)
        shallow = XdpPipeline(EiffelNF(rt_for(ExecMode.PURE_EBPF), levels=1)).run(trace)
        deep = XdpPipeline(EiffelNF(rt_for(ExecMode.PURE_EBPF), levels=4)).run(trace)
        assert deep.cycles_per_packet > shallow.cycles_per_packet

    def test_mode_cost_ordering(self):
        fg = FlowGenerator(32, seed=5)
        trace = fg.trace(200)
        totals = {}
        for mode in ExecMode:
            nf = EiffelNF(rt_for(mode), levels=3)
            totals[mode] = XdpPipeline(nf).run(trace).cycles_per_packet
        assert totals[ExecMode.PURE_EBPF] > totals[ExecMode.ENETSTL]
        assert totals[ExecMode.ENETSTL] >= totals[ExecMode.KERNEL]
