"""Tests for Maglev — the Table 1 "no degradation" reproduction."""

import pytest

from repro.datastructs.maglev import MaglevTable
from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.packet import XdpAction
from repro.net.xdp import XdpPipeline
from repro.nfs import MaglevNF


class TestMaglevTable:
    def test_balanced_shares(self):
        table = MaglevTable([f"b{i}" for i in range(8)], table_size=4099)
        shares = table.shares()
        for share in shares.values():
            assert share == pytest.approx(1 / 8, rel=0.25)

    def test_lookup_deterministic(self):
        table = MaglevTable(["a", "b", "c"], table_size=131)
        assert all(
            table.lookup(h) == table.lookup(h) for h in range(0, 10_000, 97)
        )

    def test_minimal_disruption_on_removal(self):
        """The Maglev property: removing a backend moves almost none of
        the other backends' traffic."""
        table = MaglevTable([f"b{i}" for i in range(8)], table_size=4099)
        assert table.disruption_on_removal("b3") < 0.25

    def test_every_backend_used(self):
        table = MaglevTable(["x", "y"], table_size=131)
        assert set(table.table) == {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            MaglevTable([], table_size=131)
        with pytest.raises(ValueError):
            MaglevTable(["a", "a"], table_size=131)
        with pytest.raises(ValueError):
            MaglevTable(["a"], table_size=100)   # not prime
        with pytest.raises(ValueError):
            MaglevTable(["a", "b", "c"], table_size=2)

    def test_unknown_backend_removal(self):
        table = MaglevTable(["a", "b"], table_size=131)
        with pytest.raises(ValueError):
            table.disruption_on_removal("zzz")


class TestMaglevNF:
    def _run(self, mode, n_packets=400):
        fg = FlowGenerator(512, seed=9)
        rt = BpfRuntime(mode=mode, seed=9)
        nf = MaglevNF(rt)
        result = XdpPipeline(nf).run(fg.trace(n_packets))
        return nf, result

    def test_redirects_everything(self):
        nf, result = self._run(ExecMode.ENETSTL)
        assert result.actions == {XdpAction.REDIRECT: 400}
        assert sum(nf.dispatched.values()) == 400

    def test_traffic_spread(self):
        nf, _ = self._run(ExecMode.PURE_EBPF, n_packets=2000)
        assert all(count > 0 for count in nf.dispatched.values())

    def test_flow_affinity(self):
        """Same flow always reaches the same backend."""
        rt = BpfRuntime(mode=ExecMode.KERNEL, seed=9)
        nf = MaglevNF(rt)
        fg = FlowGenerator(4, seed=9, distribution="round_robin")
        XdpPipeline(nf).run(fg.trace(64))
        # 4 flows -> at most 4 distinct backends used.
        assert sum(1 for c in nf.dispatched.values() if c) <= 4

    def test_no_degradation_in_ebpf(self):
        """The Table 1 checkmark: eBPF within a few percent of kernel."""
        cycles = {}
        for mode in ExecMode:
            _, result = self._run(mode)
            cycles[mode] = result.cycles_per_packet
        degradation = 1 - cycles[ExecMode.KERNEL] / cycles[ExecMode.PURE_EBPF]
        assert degradation < 0.08
        # ... and eNetSTL offers essentially nothing to replace.
        improvement = cycles[ExecMode.PURE_EBPF] / cycles[ExecMode.ENETSTL] - 1
        assert improvement < 0.08

    def test_same_decisions_across_modes(self):
        fg = FlowGenerator(64, seed=9)
        trace = fg.trace(100)
        dispatches = []
        for mode in ExecMode:
            rt = BpfRuntime(mode=mode, seed=9)
            nf = MaglevNF(rt)
            XdpPipeline(nf).run(trace)
            dispatches.append(nf.dispatched)
        assert dispatches[0] == dispatches[1] == dispatches[2]
