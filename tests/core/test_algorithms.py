"""Tests for the algorithm families: bitops, hashing, SIMD compare/reduce."""

import pytest
from hypothesis import given, strategies as st

from repro.core.algorithms.bitops import BitOps, soft_ffs, soft_fls, soft_popcnt
from repro.core.algorithms.hashing import (
    HashAlgos,
    crc_hash32,
    fast_hash32,
    fast_hash64,
)
from repro.core.algorithms.simd import LANES, SimdOps
from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


def rt_for(mode):
    return BpfRuntime(mode=mode, seed=1)


class TestSoftBitops:
    @given(U64)
    def test_ffs_matches_reference(self, x):
        if x == 0:
            assert soft_ffs(x) == 0
        else:
            assert soft_ffs(x) == (x & -x).bit_length()
            assert x >> (soft_ffs(x) - 1) & 1 == 1

    @given(U64)
    def test_fls_matches_bit_length(self, x):
        assert soft_fls(x) == x.bit_length()

    @given(U64)
    def test_popcnt_matches_bin_count(self, x):
        assert soft_popcnt(x) == bin(x).count("1")

    def test_known_values(self):
        assert soft_ffs(0b1000) == 4
        assert soft_fls(0b1000) == 4
        assert soft_ffs(1) == 1
        assert soft_ffs(1 << 63) == 64


class TestBitOpsCosts:
    def test_hw_cheaper_than_soft(self):
        ebpf, kern = rt_for(ExecMode.PURE_EBPF), rt_for(ExecMode.KERNEL)
        BitOps(ebpf).ffs(0xF0)
        BitOps(kern).ffs(0xF0)
        assert kern.cycles.total < ebpf.cycles.total

    def test_enetstl_close_to_kernel(self):
        enet, kern = rt_for(ExecMode.ENETSTL), rt_for(ExecMode.KERNEL)
        BitOps(enet).ffs(0xF0)
        BitOps(kern).ffs(0xF0)
        # Leaf-call overhead only: a couple of cycles.
        assert 0 < enet.cycles.total - kern.cycles.total <= 3

    def test_results_mode_independent(self):
        for x in (0, 1, 0xFF00, 1 << 63):
            results = {
                BitOps(rt_for(m)).ffs(x)
                for m in (ExecMode.PURE_EBPF, ExecMode.KERNEL, ExecMode.ENETSTL)
            }
            assert len(results) == 1


class TestHashFunctions:
    @given(U64, st.integers(0, 63))
    def test_deterministic(self, key, seed):
        assert fast_hash32(key, seed) == fast_hash32(key, seed)
        assert crc_hash32(key, seed) == crc_hash32(key, seed)

    @given(U64)
    def test_seeds_give_distinct_functions(self, key):
        values = {fast_hash32(key, seed) for seed in range(8)}
        assert len(values) >= 7   # collisions possible but rare

    def test_bytes_and_int_keys_agree(self):
        key = 0xDEADBEEF
        assert fast_hash32(key) == fast_hash32(key.to_bytes(8, "little"))

    def test_distribution_is_roughly_uniform(self):
        width = 64
        buckets = [0] * width
        for key in range(20_000):
            buckets[fast_hash32(key) % width] += 1
        mean = 20_000 / width
        assert all(0.7 * mean < b < 1.3 * mean for b in buckets)

    def test_crc_and_fast_hash_differ(self):
        assert crc_hash32(12345, 0) != fast_hash32(12345, 0)


class TestHashAlgos:
    def test_hash_cnt_updates_counters(self):
        algos = HashAlgos(rt_for(ExecMode.ENETSTL))
        counters = [[0] * 64 for _ in range(4)]
        cols = algos.hash_cnt(counters, 42, 4)
        assert len(cols) == 4
        for row, col in enumerate(cols):
            assert counters[row][col] == 1

    def test_hash_min_read_matches_min(self):
        algos = HashAlgos(rt_for(ExecMode.ENETSTL))
        counters = [[0] * 64 for _ in range(4)]
        for _ in range(7):
            algos.hash_cnt(counters, 42, 4)
        assert algos.hash_min_read(counters, 42, 4) == 7

    def test_hash_setbits_testbits_roundtrip(self):
        algos = HashAlgos(rt_for(ExecMode.KERNEL))
        bitmap = [0] * 16
        algos.hash_setbits(bitmap, 7, 4)
        assert algos.hash_testbits(bitmap, 7, 4)
        assert not algos.hash_testbits(bitmap, 8, 4)

    def test_hash_cmp_finds_needle(self):
        algos = HashAlgos(rt_for(ExecMode.KERNEL))
        slots = [[0] * 32 for _ in range(4)]
        # Plant the needle where hash row 2 points.
        from repro.core.algorithms.hashing import fast_hash32 as fh

        slots[2][fh(9, 2) % 32] = 777
        assert algos.hash_cmp(slots, 9, 4, 777) == 2
        assert algos.hash_cmp(slots, 9, 4, 888) == -1

    def test_row_mismatch_rejected(self):
        algos = HashAlgos(rt_for(ExecMode.KERNEL))
        with pytest.raises(ValueError):
            algos.hash_cnt([[0] * 8], 1, 2)

    def test_cost_ordering_across_modes(self):
        """eBPF scalar > eNetSTL kfunc > kernel, for an 8-hash update."""
        totals = {}
        for mode in ExecMode:
            rt = rt_for(mode)
            counters = [[0] * 64 for _ in range(8)]
            HashAlgos(rt).hash_cnt(counters, 42, 8)
            totals[mode] = rt.cycles.total
        assert totals[ExecMode.PURE_EBPF] > totals[ExecMode.ENETSTL]
        assert totals[ExecMode.ENETSTL] > totals[ExecMode.KERNEL]

    def test_crc_cheaper_than_scalar_for_single_hash(self):
        enet, ebpf = rt_for(ExecMode.ENETSTL), rt_for(ExecMode.PURE_EBPF)
        HashAlgos(enet).hw_hash_crc(5)
        HashAlgos(ebpf).hw_hash_crc(5)
        assert enet.cycles.total < ebpf.cycles.total

    def test_lowlevel_hash_cnt_same_result_higher_cost(self):
        rt_hi, rt_lo = rt_for(ExecMode.ENETSTL), rt_for(ExecMode.ENETSTL)
        c_hi = [[0] * 64 for _ in range(8)]
        c_lo = [[0] * 64 for _ in range(8)]
        hi = HashAlgos(rt_hi).hash_cnt(c_hi, 42, 8)
        lo = HashAlgos(rt_lo).hash_cnt_lowlevel(c_lo, 42, 8)
        assert hi == lo and c_hi == c_lo
        assert rt_lo.cycles.total > rt_hi.cycles.total

    def test_invalid_k(self):
        algos = HashAlgos(rt_for(ExecMode.KERNEL))
        with pytest.raises(ValueError):
            algos.hash_cnt([[0] * 8], 1, 0)


class TestSimdOps:
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=40),
           st.integers(0, 1000))
    def test_find_matches_index(self, arr, key):
        simd = SimdOps(rt_for(ExecMode.KERNEL))
        expected = arr.index(key) if key in arr else -1
        assert simd.find(arr, key) == expected

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=40))
    def test_reduce_min_max(self, arr):
        simd = SimdOps(rt_for(ExecMode.KERNEL))
        i_min, v_min = simd.reduce_min(arr)
        i_max, v_max = simd.reduce_max(arr)
        assert v_min == min(arr) and arr[i_min] == v_min
        assert v_max == max(arr) and arr[i_max] == v_max
        assert i_min == arr.index(v_min)

    def test_reduce_empty_rejected(self):
        simd = SimdOps(rt_for(ExecMode.KERNEL))
        with pytest.raises(ValueError):
            simd.reduce_min([])

    def test_simd_beats_scalar_on_8_items(self):
        ebpf, kern = rt_for(ExecMode.PURE_EBPF), rt_for(ExecMode.KERNEL)
        arr = list(range(8))
        SimdOps(ebpf).find(arr, 7)
        SimdOps(kern).find(arr, 7)
        assert kern.cycles.total < ebpf.cycles.total

    def test_fused_skips_call_overhead(self):
        a, b = rt_for(ExecMode.ENETSTL), rt_for(ExecMode.ENETSTL)
        arr = list(range(8))
        SimdOps(a).find(arr, 3)
        SimdOps(b).find(arr, 3, fused=True)
        assert a.cycles.total - b.cycles.total == a.costs.kfunc_call

    def test_lowlevel_same_result_much_higher_cost(self):
        hi, lo = rt_for(ExecMode.ENETSTL), rt_for(ExecMode.ENETSTL)
        arr = list(range(8))
        assert SimdOps(hi).find(arr, 5) == SimdOps(lo).find_lowlevel(arr, 5)
        # Fig. 6: the per-instruction interface erases most of the win.
        assert lo.cycles.total > 2 * hi.cycles.total

    def test_batching_scales_with_array_size(self):
        small, large = rt_for(ExecMode.KERNEL), rt_for(ExecMode.KERNEL)
        SimdOps(small).find(list(range(8)), -1, fused=True)
        SimdOps(large).find(list(range(64)), -1, fused=True)
        assert large.cycles.total == 8 * small.cycles.total
