"""Property-based tests: the lazy-checking invariant under random ops.

The invariant the memory wrapper must uphold (§4.2): after ANY sequence
of alloc/connect/disconnect/release/disown operations, every out-slot
of every live node is either NULL or points at a live node — so
``get_next`` can never observe freed memory.
"""

from hypothesis import given, settings, strategies as st

from repro.core.memwrap import MemoryWrapper, NodeProxy
from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime

N_SLOTS = 2

op = st.tuples(
    st.sampled_from(["alloc", "connect", "disconnect", "free", "traverse"]),
    st.integers(0, 31),
    st.integers(0, 31),
    st.integers(0, N_SLOTS - 1),
)


class Harness:
    """Drives the wrapper like a (possibly buggy) eBPF program would."""

    def __init__(self) -> None:
        self.rt = BpfRuntime(mode=ExecMode.ENETSTL, seed=3)
        self.w = MemoryWrapper(self.rt)
        self.proxy = NodeProxy()
        self.nodes = []          # all ever-allocated nodes (may be dead)

    def live(self):
        return [n for n in self.nodes if n.alive]

    def apply(self, action, i, j, slot):
        live = self.live()
        if action == "alloc" or not live:
            node = self.w.node_alloc(N_SLOTS, N_SLOTS, 8)
            self.w.set_owner(self.proxy, node)
            self.w.node_release(node)   # proxy now the only anchor
            self.nodes.append(node)
            return
        a = live[i % len(live)]
        b = live[j % len(live)]
        if action == "connect":
            self.w.node_connect(a, slot, b, slot)
        elif action == "disconnect":
            self.w.node_disconnect(a, slot)
        elif action == "free":
            # Free WITHOUT disconnecting anything first — the pattern
            # lazy checking exists to make safe.
            self.w.unset_owner(self.proxy, a)
        elif action == "traverse":
            nxt = self.w.get_next(a, slot)
            if nxt is not None:
                assert nxt.alive
                self.w.node_release(nxt)

    def check_invariant(self):
        for node in self.live():
            for out in node.outs:
                assert out is None or out.alive, (
                    "live node points at freed memory"
                )


@settings(max_examples=150, deadline=None)
@given(st.lists(op, min_size=1, max_size=60))
def test_no_dangling_pointers_ever(ops):
    h = Harness()
    for action, i, j, slot in ops:
        h.apply(action, i, j, slot)
        h.check_invariant()


@settings(max_examples=100, deadline=None)
@given(st.lists(op, min_size=1, max_size=40))
def test_traverse_never_faults(ops):
    """get_next after arbitrary frees returns None or a live node."""
    h = Harness()
    for action, i, j, slot in ops:
        h.apply(action, i, j, slot)
    for node in h.live():
        for slot in range(N_SLOTS):
            nxt = h.w.get_next(node, slot)
            if nxt is not None:
                assert nxt.alive
                h.w.node_release(nxt)


@settings(max_examples=100, deadline=None)
@given(st.lists(op, min_size=1, max_size=40))
def test_refcounts_stay_consistent(ops):
    """After every op sequence, owned nodes have refcount >= 0 and dead
    nodes are not owned by the proxy."""
    h = Harness()
    for action, i, j, slot in ops:
        h.apply(action, i, j, slot)
    for node in h.nodes:
        assert node.refcount >= 0
        if not node.alive:
            assert not h.proxy.owns(node)
