"""Listing-style programs against the eNetSTL kfunc registry.

Each test writes the case-study usage pattern from §5 as IR and checks
the verifier's verdict: the documented call sequences pass, the
documented misuses fail.  These are the 'user manual' tests — if an
API's metadata changes incompatibly, they break first.
"""

import pytest

from repro.core.kfunc import enetstl_registry
from repro.ebpf.insn import (
    Call,
    Exit,
    Imm,
    Jmp,
    JmpIf,
    Mov,
    Program,
    R0,
    R1,
    R2,
    R3,
    R4,
    R6,
    R7,
    R10,
)
from repro.ebpf.verifier import Verifier, VerifierError


@pytest.fixture
def verifier():
    return Verifier(enetstl_registry(), prog_type="xdp")


def verify(verifier, *insns):
    return verifier.verify(Program(list(insns), name="cs"))


def reject(verifier, *insns, match):
    with pytest.raises(VerifierError, match=match):
        verify(verifier, *insns)


class TestCaseStudy1MemoryWrapper:
    """Listing 3: list_add with the memory wrapper."""

    def test_listing3_list_add_shape(self, verifier):
        verify(
            verifier,
            # node_alloc(1, 1, 64)
            Mov(R1, Imm(1)),
            Mov(R2, Imm(1)),
            Mov(R3, Imm(64)),
            Call("node_alloc"),
            JmpIf("eq", R0, Imm(0), 17),    # NULL check (verifier-forced)
            Mov(R6, R0),
            # set_owner(proxy, node): proxy is a map value (stack stands in)
            Mov(R1, R10),
            Mov(R2, R6),
            Call("set_owner"),
            # node_write(node, 0, data, 16)
            Mov(R1, R6),
            Mov(R2, Imm(0)),
            Mov(R3, R10),
            Mov(R4, Imm(16)),
            Call("node_write"),
            # node_release(node) — the proxy keeps it alive
            Mov(R1, R6),
            Call("node_release"),
            Mov(R0, Imm(0)),
            Exit(),
        )

    def test_get_next_requires_null_check(self, verifier):
        reject(
            verifier,
            Mov(R1, Imm(1)),
            Mov(R2, Imm(1)),
            Mov(R3, Imm(8)),
            Call("node_alloc"),
            JmpIf("eq", R0, Imm(0), 12),
            Mov(R6, R0),
            Mov(R1, R6),
            Mov(R2, Imm(0)),
            Call("get_next"),
            Mov(R1, R0),                   # maybe-NULL straight into release
            Call("node_release"),
            Jmp(12),
            Mov(R0, Imm(0)),
            Exit(),
            match="may be NULL",
        )

    def test_node_alloc_sizes_must_be_constants(self, verifier):
        reject(
            verifier,
            Call("bpf_get_prandom_u32"),
            Mov(R1, R0),                   # runtime value as n_outs
            Mov(R2, Imm(1)),
            Mov(R3, Imm(8)),
            Call("node_alloc"),
            JmpIf("eq", R0, Imm(0), 8),
            Mov(R1, R0),
            Call("node_release"),
            Mov(R0, Imm(0)),
            Exit(),
            match="known constant",
        )


class TestCaseStudy3ListBuckets:
    """Listing 5: the time wheel over bktlist kfuncs."""

    def test_alloc_insert_destroy(self, verifier):
        verify(
            verifier,
            Mov(R1, Imm(256)),             # n_buckets (constant)
            Call("bktlist_alloc"),
            JmpIf("eq", R0, Imm(0), 12),
            Mov(R6, R0),
            # bktlist_insert_front(bl, i, data, size)
            Mov(R1, R6),
            Mov(R2, Imm(7)),
            Mov(R3, R10),
            Mov(R4, Imm(16)),
            Call("bktlist_insert_front"),
            Mov(R1, R6),
            Call("bktlist_destroy"),
            Jmp(12),
            Mov(R0, Imm(0)),
            Exit(),
        )

    def test_leaked_instance_rejected(self, verifier):
        reject(
            verifier,
            Mov(R1, Imm(256)),
            Call("bktlist_alloc"),
            JmpIf("eq", R0, Imm(0), 4),
            Mov(R0, Imm(0)),               # forgot bktlist_destroy/persist
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
            match="unreleased reference",
        )

    def test_persist_via_kptr_xchg(self, verifier):
        """Storing the instance in a BPF map is the release path the
        paper's case study actually uses."""
        verify(
            verifier,
            Mov(R1, Imm(256)),
            Call("bktlist_alloc"),
            JmpIf("eq", R0, Imm(0), 12),
            Mov(R2, R0),
            Mov(R1, R10),                  # map-value slot
            Call("bpf_kptr_xchg"),
            JmpIf("eq", R0, Imm(0), 10),
            Mov(R1, R0),                   # previously stored instance
            Call("bktlist_destroy"),
            Jmp(10),
            Mov(R0, Imm(0)),
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
        )


class TestRandomPoolPrograms:
    def test_geo_pool_lifecycle(self, verifier):
        verify(
            verifier,
            Mov(R1, Imm(2048)),            # capacity
            Mov(R2, Imm(4)),               # p encoded as 1/4
            Call("geo_rpool_alloc"),
            JmpIf("eq", R0, Imm(0), 9),
            Mov(R6, R0),
            Mov(R1, R6),
            Call("geo_rpool_draw"),
            Mov(R1, R6),
            Call("geo_rpool_destroy"),
            Mov(R0, Imm(0)),
            Exit(),
        )

    def test_draw_after_destroy_rejected(self, verifier):
        reject(
            verifier,
            Mov(R1, Imm(2048)),
            Call("rpool_alloc"),
            JmpIf("eq", R0, Imm(0), 9),
            Mov(R6, R0),
            Mov(R1, R6),
            Call("rpool_destroy"),
            Mov(R1, R6),                   # r6 invalidated by the release
            Call("rpool_draw"),
            Mov(R0, Imm(0)),
            Exit(),
            match="uninitialized",
        )


class TestAlgorithmKfuncs:
    def test_ffs_and_hash_calls(self, verifier):
        verify(
            verifier,
            Mov(R1, Imm(0xF0)),
            Call("bpf_ffs64"),
            Mov(R1, R10),
            Mov(R2, Imm(13)),
            Mov(R3, R0),
            Call("hw_hash_crc"),
            Exit(),
        )

    def test_find_simd_takes_len_constant(self, verifier):
        reject(
            verifier,
            Call("bpf_get_prandom_u32"),
            Mov(R1, R10),
            Mov(R2, R0),                  # runtime length
            Mov(R3, Imm(5)),
            Call("find_simd"),
            Exit(),
            match="known constant",
        )
