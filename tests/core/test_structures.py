"""Tests for list-buckets and the random pools."""

import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import PoolEmptyError
from repro.core.structures.list_buckets import ListBuckets
from repro.core.structures.random_pool import GeoRandomPool, RandomPool
from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime


def rt_for(mode=ExecMode.ENETSTL, seed=1):
    return BpfRuntime(mode=mode, seed=seed)


class TestListBuckets:
    def test_fifo_semantics(self):
        lb = ListBuckets(rt_for(), 8)
        lb.insert_tail(3, "a")
        lb.insert_tail(3, "b")
        assert lb.pop_front(3) == "a"
        assert lb.pop_front(3) == "b"
        assert lb.pop_front(3) is None

    def test_lifo_with_insert_front(self):
        lb = ListBuckets(rt_for(), 8)
        lb.insert_front(0, "a")
        lb.insert_front(0, "b")
        assert lb.pop_front(0) == "b"

    def test_buckets_are_independent(self):
        lb = ListBuckets(rt_for(), 4)
        lb.insert_tail(0, 1)
        lb.insert_tail(3, 2)
        assert lb.pop_front(3) == 2
        assert lb.pop_front(0) == 1

    def test_drain_returns_in_order(self):
        lb = ListBuckets(rt_for(), 4)
        for x in range(5):
            lb.insert_tail(2, x)
        assert lb.drain(2) == [0, 1, 2, 3, 4]
        assert lb.drain(2) == []

    def test_bitmap_tracks_occupancy(self):
        lb = ListBuckets(rt_for(), 128)
        assert lb.bitmap_word(0) == 0
        lb.insert_tail(5, "x")
        lb.insert_tail(70, "y")
        assert lb.bitmap_word(0) == 1 << 5
        assert lb.bitmap_word(1) == 1 << (70 - 64)
        lb.pop_front(5)
        assert lb.bitmap_word(0) == 0

    def test_len_and_bucket_len(self):
        lb = ListBuckets(rt_for(), 4)
        lb.insert_tail(1, "a")
        lb.insert_tail(1, "b")
        assert len(lb) == 2
        assert lb.bucket_len(1) == 2
        assert lb.is_empty(0) and not lb.is_empty(1)

    def test_index_bounds(self):
        lb = ListBuckets(rt_for(), 4)
        with pytest.raises(IndexError):
            lb.insert_tail(4, "x")
        with pytest.raises(IndexError):
            lb.pop_front(-1)

    def test_ebpf_ops_cost_more_than_enetstl(self):
        ebpf, enet = rt_for(ExecMode.PURE_EBPF), rt_for(ExecMode.ENETSTL)
        for rt in (ebpf, enet):
            lb = ListBuckets(rt, 8)
            lb.insert_tail(0, "x")
            lb.pop_front(0)
        assert ebpf.cycles.total > enet.cycles.total

    def test_enetstl_slightly_above_kernel(self):
        kern, enet = rt_for(ExecMode.KERNEL), rt_for(ExecMode.ENETSTL)
        for rt in (kern, enet):
            lb = ListBuckets(rt, 8)
            lb.insert_tail(0, "x")
            lb.pop_front(0)
        assert 0 < enet.cycles.total - kern.cycles.total < 2 * enet.costs.kfunc_call

    def test_empty_check_is_cheap(self):
        rt = rt_for(ExecMode.ENETSTL)
        lb = ListBuckets(rt, 8)
        rt.cycles.reset()
        lb.pop_front(0)   # empty
        empty_cost = rt.cycles.total
        lb.insert_tail(0, "x")
        rt.cycles.reset()
        lb.pop_front(0)
        assert empty_cost < rt.cycles.total

    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 100)),
                    max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_matches_reference_deques(self, ops):
        from collections import deque

        lb = ListBuckets(rt_for(), 8)
        ref = [deque() for _ in range(8)]
        for bucket, value in ops:
            lb.insert_tail(bucket, value)
            ref[bucket].append(value)
        for bucket in range(8):
            while ref[bucket]:
                assert lb.pop_front(bucket) == ref[bucket].popleft()
            assert lb.pop_front(bucket) is None


class TestRandomPool:
    def test_draw_returns_u32(self):
        pool = RandomPool(rt_for())
        for _ in range(100):
            assert 0 <= pool.draw() <= 0xFFFFFFFF

    def test_auto_refill(self):
        pool = RandomPool(rt_for(), capacity=64)
        for _ in range(500):
            pool.draw()
        assert pool.refills >= 1
        assert pool.level > 0

    def test_no_refill_raises_when_disabled(self):
        pool = RandomPool(rt_for(), capacity=8, auto_refill=False)
        with pytest.raises(PoolEmptyError):
            for _ in range(20):
                pool.draw()

    def test_ebpf_mode_falls_back_to_helper(self):
        rt = rt_for(ExecMode.PURE_EBPF)
        pool = RandomPool(rt)
        rt.cycles.reset()
        pool.draw()
        assert rt.cycles.total == rt.costs.prandom_helper

    def test_pool_draw_cheaper_than_helper(self):
        enet, ebpf = rt_for(ExecMode.ENETSTL), rt_for(ExecMode.PURE_EBPF)
        p1, p2 = RandomPool(enet), RandomPool(ebpf)
        enet.cycles.reset()
        ebpf.cycles.reset()
        p1.draw()
        p2.draw()
        assert enet.cycles.total < ebpf.cycles.total

    def test_draw_many_batches_call_overhead(self):
        a, b = rt_for(), rt_for()
        pa, pb = RandomPool(a), RandomPool(b)
        a.cycles.reset()
        b.cycles.reset()
        pa.draw_many(8)
        for _ in range(8):
            pb.draw()
        assert a.cycles.total < b.cycles.total

    def test_draw_float_in_unit_interval(self):
        pool = RandomPool(rt_for())
        assert all(0.0 <= pool.draw_float() < 1.0 for _ in range(100))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RandomPool(rt_for(), capacity=0)
        with pytest.raises(ValueError):
            RandomPool(rt_for(), refill_threshold=1.5)


class TestGeoRandomPool:
    def test_mean_matches_geometric(self):
        """E[draws] = 1/p for a geometric distribution."""
        pool = GeoRandomPool(rt_for(seed=9), p=0.25, capacity=4096)
        samples = [pool.draw() for _ in range(4000)]
        assert statistics.mean(samples) == pytest.approx(4.0, rel=0.1)
        assert min(samples) >= 1

    def test_p_one_always_one(self):
        pool = GeoRandomPool(rt_for(), p=1.0)
        assert all(pool.draw() == 1 for _ in range(50))

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            GeoRandomPool(rt_for(), p=0.0)
        with pytest.raises(ValueError):
            GeoRandomPool(rt_for(), p=1.5)

    def test_ebpf_mode_rejected(self):
        pool = GeoRandomPool(rt_for(ExecMode.PURE_EBPF), p=0.5)
        with pytest.raises(PoolEmptyError):
            pool.draw()

    def test_draw_many(self):
        pool = GeoRandomPool(rt_for(), p=0.5)
        values = pool.draw_many(16)
        assert len(values) == 16 and all(v >= 1 for v in values)

    def test_auto_refill(self):
        pool = GeoRandomPool(rt_for(), p=0.9, capacity=32)
        for _ in range(200):
            pool.draw()
        assert pool.refills >= 1
