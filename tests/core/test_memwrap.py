"""Memory wrapper tests: proxy ownership, lazy checking, refcounts."""

import pytest

from repro.core.errors import (
    DoubleFreeError,
    InvalidSlotError,
    OwnershipError,
    UseAfterFreeError,
)
from repro.core.memwrap import EAGER, LAZY, MemoryWrapper, Node, NodeProxy
from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime


@pytest.fixture
def rt():
    return BpfRuntime(mode=ExecMode.ENETSTL, seed=1)


@pytest.fixture
def w(rt):
    return MemoryWrapper(rt)


@pytest.fixture
def proxy():
    return NodeProxy("test")


class TestLifecycle:
    def test_alloc_returns_live_node(self, w):
        node = w.node_alloc(2, 2, 16)
        assert node is not None and node.alive
        assert node.refcount == 1

    def test_release_without_owner_frees(self, w):
        node = w.node_alloc(1, 1, 8)
        w.node_release(node)
        assert not node.alive

    def test_owner_keeps_node_alive(self, w, proxy):
        node = w.node_alloc(1, 1, 8)
        w.set_owner(proxy, node)
        w.node_release(node)
        assert node.alive            # proxy ownership pins it
        w.unset_owner(proxy, node)
        assert not node.alive        # last anchor gone -> freed

    def test_unset_owner_with_live_refs_defers_free(self, w, proxy):
        node = w.node_alloc(1, 1, 8)
        w.set_owner(proxy, node)
        w.unset_owner(proxy, node)   # refcount still 1
        assert node.alive
        w.node_release(node)
        assert not node.alive

    def test_alloc_failure_injection(self, w):
        w.fail_next_alloc()
        assert w.node_alloc(1, 1, 8) is None
        assert w.node_alloc(1, 1, 8) is not None

    def test_double_release_detected(self, w, proxy):
        node = w.node_alloc(1, 1, 8)
        w.set_owner(proxy, node)
        w.node_release(node)
        with pytest.raises(DoubleFreeError):
            w.node_release(node)

    def test_release_of_freed_node_detected(self, w):
        node = w.node_alloc(1, 1, 8)
        w.node_release(node)
        with pytest.raises(UseAfterFreeError):
            w.node_release(node)


class TestOwnership:
    def test_double_adopt_rejected(self, w, proxy):
        node = w.node_alloc(1, 1, 8)
        w.set_owner(proxy, node)
        with pytest.raises(OwnershipError):
            w.set_owner(proxy, node)

    def test_foreign_adopt_rejected(self, w, proxy):
        other = NodeProxy("other")
        node = w.node_alloc(1, 1, 8)
        w.set_owner(proxy, node)
        with pytest.raises(OwnershipError):
            w.set_owner(other, node)

    def test_disown_unowned_rejected(self, w, proxy):
        node = w.node_alloc(1, 1, 8)
        with pytest.raises(OwnershipError):
            w.unset_owner(proxy, node)

    def test_proxy_tracks_owned_set(self, w, proxy):
        nodes = [w.node_alloc(1, 1, 8) for _ in range(5)]
        for n in nodes:
            w.set_owner(proxy, n)
        assert len(proxy) == 5
        assert all(proxy.owns(n) for n in nodes)

    def test_drop_all_frees_everything(self, w, proxy):
        nodes = []
        for _ in range(4):
            n = w.node_alloc(1, 1, 8)
            w.set_owner(proxy, n)
            w.node_release(n)   # program's ref returned; proxy pins
            nodes.append(n)
        assert all(n.alive for n in nodes)
        proxy.drop_all(w)
        assert all(not n.alive for n in nodes)
        assert len(proxy) == 0


class TestRelationships:
    def test_connect_and_traverse(self, w, proxy):
        a = w.node_alloc(1, 1, 8)
        b = w.node_alloc(1, 1, 8)
        for n in (a, b):
            w.set_owner(proxy, n)
        w.node_connect(a, 0, b, 0)
        nxt = w.get_next(a, 0)
        assert nxt is b
        assert b.refcount == 2
        w.node_release(nxt)
        assert b.refcount == 1

    def test_get_next_null_when_unconnected(self, w, proxy):
        a = w.node_alloc(1, 1, 8)
        w.set_owner(proxy, a)
        assert w.get_next(a, 0) is None

    def test_disconnect(self, w, proxy):
        a, b = w.node_alloc(1, 1, 8), w.node_alloc(1, 1, 8)
        for n in (a, b):
            w.set_owner(proxy, n)
        w.node_connect(a, 0, b, 0)
        w.node_disconnect(a, 0)
        assert w.get_next(a, 0) is None
        assert b.in_degree == 0

    def test_reconnect_replaces_edge(self, w, proxy):
        a, b, c = (w.node_alloc(1, 1, 8) for _ in range(3))
        for n in (a, b, c):
            w.set_owner(proxy, n)
        w.node_connect(a, 0, b, 0)
        w.node_connect(a, 0, c, 0)
        assert w.get_next(a, 0) is c
        assert b.in_degree == 0      # the old reverse edge was dropped

    def test_invalid_slot(self, w, proxy):
        a = w.node_alloc(1, 1, 8)
        b = w.node_alloc(1, 1, 8)
        with pytest.raises(InvalidSlotError):
            w.node_connect(a, 3, b, 0)
        with pytest.raises(InvalidSlotError):
            w.get_next(a, 1)


class TestLazySafetyChecking:
    """The paper's §4.2 scenario: free b while a->next == b."""

    def test_freeing_target_nulls_inbound_pointers(self, w, proxy):
        a = w.node_alloc(1, 1, 8)
        b = w.node_alloc(1, 1, 8)
        for n in (a, b):
            w.set_owner(proxy, n)
        w.node_connect(a, 0, b, 0)
        # Free b WITHOUT disconnecting it from a first (the buggy-NF
        # pattern the paper describes).
        w.node_release(b)
        w.unset_owner(proxy, b)
        assert not b.alive
        # Lazy teardown: a->next was nulled, so no use-after-free.
        assert w.get_next(a, 0) is None

    def test_chain_free_middle(self, w, proxy):
        nodes = [w.node_alloc(1, 1, 8) for _ in range(3)]
        for n in nodes:
            w.set_owner(proxy, n)
        a, b, c = nodes
        w.node_connect(a, 0, b, 0)
        w.node_connect(b, 0, c, 0)
        w.node_release(b)
        w.unset_owner(proxy, b)
        assert w.get_next(a, 0) is None
        assert c.in_degree == 0      # b's out-edge reverse entry dropped

    def test_freed_nodes_own_outs_cleared(self, w, proxy):
        a, b = w.node_alloc(1, 1, 8), w.node_alloc(1, 1, 8)
        for n in (a, b):
            w.set_owner(proxy, n)
        w.node_connect(a, 0, b, 0)
        w.node_release(a)
        w.unset_owner(proxy, a)
        assert b.alive and b.in_degree == 0

    def test_eager_mode_charges_more_per_traversal(self, rt):
        lazy_rt = BpfRuntime(mode=ExecMode.ENETSTL, seed=1)
        eager_rt = BpfRuntime(mode=ExecMode.ENETSTL, seed=1)
        for checking, runtime in ((LAZY, lazy_rt), (EAGER, eager_rt)):
            w = MemoryWrapper(runtime, checking=checking)
            proxy = NodeProxy()
            a, b = w.node_alloc(1, 1, 8), w.node_alloc(1, 1, 8)
            w.set_owner(proxy, a)
            w.set_owner(proxy, b)
            w.node_connect(a, 0, b, 0)
            runtime.cycles.reset()
            for _ in range(100):
                nxt = w.get_next(a, 0)
                w.node_release(nxt)
        assert eager_rt.cycles.total > lazy_rt.cycles.total

    def test_invalid_checking_mode(self, rt):
        with pytest.raises(ValueError):
            MemoryWrapper(rt, checking="optimistic")


class TestPayload:
    def test_read_write(self, w):
        node = w.node_alloc(0, 0, 32)
        w.node_write(node, 4, b"hello")
        assert w.node_read(node, 4, 5) == b"hello"

    def test_u64_helpers(self, w):
        node = w.node_alloc(0, 0, 16)
        node.write_u64(0xDEADBEEF, 8)
        assert node.read_u64(8) == 0xDEADBEEF

    def test_out_of_bounds_write(self, w):
        node = w.node_alloc(0, 0, 8)
        with pytest.raises(IndexError):
            w.node_write(node, 4, b"too-long")

    def test_out_of_bounds_read(self, w):
        node = w.node_alloc(0, 0, 8)
        with pytest.raises(IndexError):
            w.node_read(node, 6, 4)

    def test_read_after_free(self, w):
        node = w.node_alloc(0, 0, 8)
        w.node_release(node)
        with pytest.raises(UseAfterFreeError):
            node.read(0, 4)


class TestCosts:
    def test_kernel_traversal_cheaper(self):
        totals = {}
        for mode in (ExecMode.KERNEL, ExecMode.ENETSTL):
            rt = BpfRuntime(mode=mode, seed=1)
            w = MemoryWrapper(rt)
            proxy = NodeProxy()
            a, b = w.node_alloc(1, 1, 8), w.node_alloc(1, 1, 8)
            w.set_owner(proxy, a)
            w.set_owner(proxy, b)
            w.node_connect(a, 0, b, 0)
            rt.cycles.reset()
            for _ in range(50):
                w.node_release(w.get_next(a, 0))
            totals[mode] = rt.cycles.total
        assert totals[ExecMode.KERNEL] < totals[ExecMode.ENETSTL]

    def test_stats_counters(self, w, proxy):
        a, b = w.node_alloc(1, 1, 8), w.node_alloc(1, 1, 8)
        w.set_owner(proxy, a)
        w.set_owner(proxy, b)
        w.node_connect(a, 0, b, 0)
        w.node_release(w.get_next(a, 0))
        assert w.stats.allocs == 2
        assert w.stats.connects == 1
        assert w.stats.traversals == 1
