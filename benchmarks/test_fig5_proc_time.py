"""Fig. 5: per-packet processing time (bpf_ktime_get_ns bracketing)."""

import repro.analysis as a
from repro.ebpf.cost_model import ExecMode


def test_fig5_processing_time(run_once):
    points = run_once(a.fig4_fig5_latency, n_packets=300)
    print()
    print(a.render_latency(points, "Fig. 5"))
    by_nf = {}
    for p in points:
        by_nf.setdefault(p.nf, {})[p.mode] = p
    for nf, modes in by_nf.items():
        if ExecMode.PURE_EBPF not in modes:
            continue   # skip list: no eBPF variant
        ebpf = modes[ExecMode.PURE_EBPF]
        enet = modes[ExecMode.ENETSTL]
        kern = modes[ExecMode.KERNEL]
        # eNetSTL reduces per-packet processing time vs pure eBPF and
        # sits between the kernel and eBPF builds.
        assert enet.proc_ns < ebpf.proc_ns, nf
        assert kern.proc_ns <= enet.proc_ns, nf
