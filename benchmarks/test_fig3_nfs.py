"""Fig. 3(a)-(h): per-NF throughput sweeps (§6.2).

Each bench regenerates one subfigure: the same x-axis sweep, the same
three series (eBPF / Kernel / eNetSTL), printed as a table, with the
paper's headline ratios asserted as bands.
"""

import repro.analysis as a


def test_fig3a_skiplist_lookup(run_once):
    sweep = run_once(a.fig3a_skiplist_lookup, n_packets=1500)
    print()
    print(a.render_sweep(sweep, "Fig. 3(a): skip-list KV lookup (NFD-HCS)"))
    # Paper: eNetSTL within 7.33% of the kernel; no eBPF series (P1).
    from repro.ebpf.cost_model import ExecMode

    assert 0.04 <= sweep.avg_gap_to_kernel() <= 0.12
    assert not sweep.series(ExecMode.PURE_EBPF)


def test_fig3b_skiplist_update_delete(run_once):
    sweep = run_once(a.fig3b_skiplist_update_delete, n_packets=1500)
    print()
    print(a.render_sweep(sweep, "Fig. 3(b): skip-list KV update/delete 1:1"))
    assert 0.05 <= sweep.avg_gap_to_kernel() <= 0.13     # paper 8.54%


def test_fig3c_cuckoo_switch(run_once):
    sweep = run_once(a.fig3c_cuckoo_switch, n_packets=2000)
    print()
    print(a.render_sweep(sweep, "Fig. 3(c): CuckooSwitch vs load factor"))
    assert 0.20 <= sweep.avg_improvement() <= 0.35       # paper 27.4%
    assert 0.28 <= sweep.max_improvement() <= 0.40       # paper 33.08%
    assert sweep.avg_gap_to_kernel() <= 0.07             # paper 4.30%


def test_fig3d_nitrosketch(run_once):
    sweep = run_once(a.fig3d_nitrosketch, n_packets=2500)
    print()
    print(a.render_sweep(sweep, "Fig. 3(d): NitroSketch vs update probability"))
    assert 0.60 <= sweep.avg_improvement() <= 0.90       # paper 75.4%
    assert sweep.avg_gap_to_kernel() <= 0.08             # paper 5.24%


def test_fig3e_countmin(run_once):
    sweep = run_once(a.fig3e_countmin, n_packets=2500)
    print()
    print(a.render_sweep(sweep, "Fig. 3(e): Count-min vs #hash functions"))
    assert 0.40 <= sweep.avg_improvement() <= 0.58       # paper 47.9%
    assert 0.60 <= sweep.max_improvement() <= 0.82       # paper 70.9% @ 8
    assert sweep.avg_gap_to_kernel() <= 0.06             # paper 1.64%


def test_fig3f_timewheel(run_once):
    sweep = run_once(a.fig3f_timewheel, n_packets=2000)
    print()
    print(a.render_sweep(sweep, "Fig. 3(f): time wheel vs slot granularity"))
    assert 0.30 <= sweep.avg_improvement() <= 0.48       # paper 38.4%
    assert sweep.avg_gap_to_kernel() <= 0.08             # paper 5.75%


def test_fig3g_cuckoo_filter(run_once):
    sweep = run_once(a.fig3g_cuckoo_filter, n_packets=2000)
    print()
    print(a.render_sweep(sweep, "Fig. 3(g): cuckoo filter vs load factor"))
    assert 0.24 <= sweep.avg_improvement() <= 0.40       # paper 31.8%
    assert sweep.avg_gap_to_kernel() <= 0.05             # paper 0.8%


def test_fig3h_eiffel(run_once):
    sweep = run_once(a.fig3h_eiffel, n_packets=2000)
    print()
    print(a.render_sweep(sweep, "Fig. 3(h): Eiffel cFFS vs bitmap levels"))
    assert 0.08 <= sweep.avg_improvement() <= 0.24       # paper 14.6%
    assert sweep.avg_gap_to_kernel() <= 0.06             # paper ~0
