"""Fig. 1: shared-behavior share of NF execution time (§3)."""

import repro.analysis as a


def test_fig1_behavior_share(run_once):
    shares = run_once(a.fig1_behavior_shares, n_packets=1200)
    print()
    print(a.render_behavior_shares(shares))
    values = [s.share for s in shares]
    assert len(values) == 10
    # Paper: 20.6% .. 65.4%.
    assert 0.10 <= min(values)
    assert max(values) <= 0.75
    assert max(values) >= 0.50
