"""JIT data-plane benchmark (PR 5's acceptance numbers).

Not a pytest module — run it directly:

    PYTHONPATH=src python benchmarks/bench_jit.py [--quick] [--out PATH]

Measures, and self-asserts, the PR 5 execution stack:

1. **Throughput** — the same trace through ``IrNf`` under both
   backends (``interp`` vs ``jit``) for the three real NF programs
   (classifier, count-min sketch, Maglev picker).  The JIT must reach
   >= 2x interpreter packets/sec while staying *bit-identical*: same
   per-packet r0 sequence, same runtime cycle total.  Compile cost and
   loop-unrolling metadata are recorded per program.
2. **Verification pruning** — the subsumption-pruned verifier vs
   ``prune=False`` on the eq-dispatch program family (switch-style
   arms sharing a long tail — the shape pruning exists for).  Pruning
   must explore strictly fewer states, finish faster at the largest
   size, and accept under a ``max_states`` budget the unpruned
   verifier exceeds — while producing identical proof tables.

Results land in ``BENCH_PR5.json`` next to the repo root; the CI
``jit-smoke`` job runs the ``--quick`` variant and re-checks the
self-assertions.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.analysis.hostmeta import host_metadata
from repro.ebpf.insn import Alu, Call, Exit, Imm, JmpIf, Mov, Program, R0, R6
from repro.ebpf.jit import compile_program
from repro.ebpf.progs import get_case, runnable_registry
from repro.ebpf.runtime import BpfRuntime
from repro.ebpf.verifier import Verifier, VerifierError
from repro.net.flowgen import FlowGenerator
from repro.net.irnf import IrNf

#: The real NF programs the throughput claim is made on.
NF_PROGRAMS = ("nf_classifier", "nf_cm_sketch", "nf_maglev_pick")

#: Timing repetitions per backend (fresh NF each; min wall-clock wins).
REPS = 3


def _eq_dispatch_prog(k: int, tail_pad: int) -> Program:
    """Switch-style eq-chain whose arms share a long tail (the pruning
    benchmark family; mirrored in tests/ebpf/test_jit.py)."""
    insns = [
        Call("bpf_get_prandom_u32"),
        Mov(R6, R0),
        Alu("and", R6, Imm(0xFF)),
    ]
    tail = 3 + k
    for i in range(k):
        insns.append(JmpIf("eq", R6, Imm(i + 1), tail))
    insns += [Mov(R0, R6)]
    insns += [Alu("add", R0, Imm(1)) for _ in range(tail_pad)]
    insns += [Alu("and", R0, Imm(3)), Exit()]
    return Program(insns, name=f"eq_dispatch_{k}_{tail_pad}")


def _timed_run(name: str, backend: str, trace):
    """Best-of-REPS wall-clock for one backend; returns (pps, witness).

    Each repetition gets a fresh runtime + NF so kfunc state (the
    sketch counters, the shared PRNG stream) starts identical — the
    witness (r0 sequence + cycle total) is therefore the same every
    rep, and only the clock varies.
    """
    best = float("inf")
    witness = None
    for _ in range(REPS):
        rt = BpfRuntime(seed=1)
        nf = IrNf(rt, get_case(name).prog, seed=1, backend=backend)
        t0 = time.perf_counter()
        nf.process_batch(trace)
        dt = time.perf_counter() - t0
        best = min(best, dt)
        rep_witness = (tuple(nf.returns), rt.cycles.total)
        assert witness is None or witness == rep_witness, (
            f"{name}/{backend}: repetitions diverged"
        )
        witness = rep_witness
    return len(trace) / best, witness


def throughput_suite(n_packets: int, min_speedup: float) -> dict:
    fg = FlowGenerator(n_flows=64, seed=3)
    trace = list(fg.trace(n_packets))
    reg = runnable_registry(0)
    verifier = Verifier(reg)
    out = {"n_packets": n_packets, "min_speedup_required": min_speedup,
           "programs": {}}
    for name in NF_PROGRAMS:
        vp = verifier.verify(get_case(name).prog)
        t0 = time.perf_counter()
        compiled = compile_program(get_case(name).prog, vp, reg)
        compile_ms = (time.perf_counter() - t0) * 1000

        interp_pps, interp_witness = _timed_run(name, "interp", trace)
        jit_pps, jit_witness = _timed_run(name, "jit", trace)
        assert interp_witness == jit_witness, (
            f"{name}: JIT output diverged from interpreter"
        )
        speedup = jit_pps / interp_pps
        assert speedup >= min_speedup, (
            f"{name}: JIT speedup {speedup:.2f}x below the "
            f"{min_speedup}x acceptance bar"
        )
        out["programs"][name] = {
            "interp_pps": round(interp_pps),
            "jit_pps": round(jit_pps),
            "speedup": round(speedup, 3),
            "bit_identical": True,
            "cycle_total": interp_witness[1],
            "compile_ms": round(compile_ms, 3),
            "jit_nodes": compiled.n_nodes,
            "loops_unrolled": {str(pc): n for pc, n
                               in compiled.unrolled.items()},
            "checks_elided_per_packet": vp.stats.checks_elided,
        }
    return out


def pruning_suite() -> dict:
    reg = runnable_registry(0)
    out = {"family": "eq_dispatch (k arms, shared tail)", "sizes": {}}
    for k, pad in ((8, 16), (12, 24), (16, 32)):
        prog = _eq_dispatch_prog(k, pad)
        t0 = time.perf_counter()
        vp = Verifier(reg).verify(prog)
        pruned_ms = (time.perf_counter() - t0) * 1000
        t0 = time.perf_counter()
        vu = Verifier(reg, prune=False).verify(prog)
        unpruned_ms = (time.perf_counter() - t0) * 1000
        assert vp.annotations.safe_mem == vu.annotations.safe_mem
        assert vp.annotations.safe_div == vu.annotations.safe_div
        assert vp.stats.states_explored < vu.stats.states_explored, (
            f"k={k}: pruning explored no fewer states"
        )
        out["sizes"][f"k{k}_pad{pad}"] = {
            "pruned_ms": round(pruned_ms, 3),
            "unpruned_ms": round(unpruned_ms, 3),
            "time_speedup": round(unpruned_ms / pruned_ms, 3),
            "pruned_states": vp.stats.states_explored,
            "states_pruned": vp.stats.states_pruned,
            "unpruned_states": vu.stats.states_explored,
            "proofs_identical": True,
        }
    largest = out["sizes"]["k16_pad32"]
    assert largest["time_speedup"] > 1.0, (
        "pruning must be faster at the largest dispatch size"
    )

    # The budget demo: pruned fits where unpruned exceeds the limit.
    budget = 128
    prog = _eq_dispatch_prog(12, 24)
    vp = Verifier(reg, max_states=budget).verify(prog)
    try:
        Verifier(reg, prune=False, max_states=budget).verify(prog)
        raise AssertionError("unpruned verifier must exceed the budget")
    except VerifierError:
        pass
    out["budget_demo"] = {
        "max_states": budget,
        "pruned_accepts_with_states": vp.stats.states_explored,
        "unpruned_verdict": "program too complex (state limit exceeded)",
    }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run (fewer packets; relaxed speedup bar to "
             "absorb shared-runner timing noise)",
    )
    parser.add_argument("--packets", type=int, default=None)
    parser.add_argument(
        "--out",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR5.json"
        ),
    )
    args = parser.parse_args(argv)
    n_packets = args.packets or (1500 if args.quick else 6000)
    min_speedup = 1.5 if args.quick else 2.0

    print(f"throughput suite ({n_packets} packets x {len(NF_PROGRAMS)} NFs, "
          f"best of {REPS}) ...")
    throughput = throughput_suite(n_packets, min_speedup)
    for name, d in throughput["programs"].items():
        print(f"  {name:>15}: interp {d['interp_pps']:>7} pps -> "
              f"jit {d['jit_pps']:>7} pps ({d['speedup']:.2f}x, "
              f"compile {d['compile_ms']:.2f}ms)")

    print("verification pruning suite ...")
    pruning = pruning_suite()
    for size, d in pruning["sizes"].items():
        print(f"  {size:>9}: {d['unpruned_ms']:.2f}ms / "
              f"{d['unpruned_states']} states -> {d['pruned_ms']:.2f}ms / "
              f"{d['pruned_states']} states ({d['time_speedup']:.2f}x)")

    payload = {
        "benchmark": "PR5 JIT compilation + subsumption-pruned verification",
        "host": host_metadata(),
        "quick": args.quick,
        "throughput": throughput,
        "verification_pruning": pruning,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    worst = min(d["speedup"] for d in throughput["programs"].values())
    print(f"  worst-case JIT speedup: {worst}x (bar: {min_speedup}x)")
    print(f"  pruning at k16: "
          f"{pruning['sizes']['k16_pad32']['time_speedup']}x faster")
    return 0


if __name__ == "__main__":
    sys.exit(main())
