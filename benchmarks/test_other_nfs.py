"""§6.2 "Other cases": EFD, TSS, HeavyKeeper, VBF throughput."""

import pytest

import repro.analysis as a

PAPER = {
    "efd": (0.483, 0.0471),
    "tss": (0.267, 0.0396),
    "heavykeeper": (0.300, 0.0253),
    "vbf": (0.158, 0.0262),
}


@pytest.mark.parametrize("nf", sorted(PAPER))
def test_other_nf(nf, run_once):
    sweep = run_once(a.other_nf, nf, n_packets=2000)
    print()
    print(a.render_sweep(sweep, f"Other cases: {nf}"))
    paper_imp, paper_gap = PAPER[nf]
    imp = sweep.avg_improvement()
    gap = sweep.avg_gap_to_kernel()
    print(f"paper: +{paper_imp:.1%} improvement, {paper_gap:.2%} gap")
    assert 0.6 * paper_imp <= imp <= 1.5 * paper_imp
    assert gap <= max(2.5 * paper_gap, 0.06)
