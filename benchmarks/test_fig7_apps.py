"""Fig. 7: eNetSTL integrated into real-world eBPF projects (§6.5)."""

import repro.analysis as a


def test_fig7_apps(run_once):
    results = run_once(a.fig7_apps, n_packets=2500)
    print()
    print(a.render_apps(results))
    imps = [d["improvement"] for d in results.values()]
    assert len(imps) == 4
    assert all(i > 0.05 for i in imps)
    # Paper: +21.6% on average.
    assert 0.15 <= sum(imps) / len(imps) <= 0.30
