"""Extension benches: the §4.5 NFs built beyond the paper's evaluation.

Not paper figures — these measure the extension NFs the library newly
enables (LRU cache) or whose unified kfuncs no evaluated NF exercises
(d-ary cuckoo via hash_simd_cmp, Bloom via hash_simd_setbits).
"""

from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.xdp import XdpPipeline
from repro.nfs import (
    BloomFilterNF,
    DaryCuckooNF,
    ElasticSketchNF,
    LruCacheNF,
    MaglevNF,
)


def test_lru_cache_extension(run_once):
    def experiment():
        fg = FlowGenerator(512, seed=31, distribution="zipf")
        trace = fg.trace(3000)
        out = {}
        for mode in (ExecMode.KERNEL, ExecMode.ENETSTL):
            rt = BpfRuntime(mode=mode, seed=31)
            nf = LruCacheNF(rt, capacity=256)
            result = XdpPipeline(nf).run(trace)
            out[mode.label] = (result.pps, nf.hits / (nf.hits + nf.misses))
        return out

    results = run_once(experiment)
    print()
    print("== Extension: LRU flow cache on the memory wrapper ==")
    for label, (pps, hit_rate) in results.items():
        print(f"  {label:8s}: {pps / 1e6:5.2f} Mpps, hit rate {hit_rate:.1%}")
    kern, enet = results["Kernel"], results["eNetSTL"]
    gap = 1 - enet[0] / kern[0]
    print(f"  eNetSTL gap to kernel: {gap:.2%}")
    assert kern[1] == enet[1]         # identical cache behavior
    # Heavier on pointer mutation than the skip list (every hit rewires
    # the recency list), so the kfunc-crossing gap is larger.
    assert 0.0 < gap < 0.20


def test_dary_cuckoo_extension(run_once):
    def experiment():
        fg = FlowGenerator(2048, seed=32)
        trace = fg.trace(3000)
        out = {}
        for mode in ExecMode:
            rt = BpfRuntime(mode=mode, seed=32)
            nf = DaryCuckooNF(rt, d=4, width=4096)
            nf.populate(f.key_int for f in fg.flows)
            out[mode.label] = XdpPipeline(nf).run(trace).pps
        return out

    results = run_once(experiment)
    print()
    print("== Extension: d-ary cuckoo KV (hash_simd_cmp) ==")
    for label, pps in results.items():
        print(f"  {label:8s}: {pps / 1e6:5.2f} Mpps")
    imp = results["eNetSTL"] / results["eBPF"] - 1
    print(f"  eNetSTL over eBPF: +{imp:.1%}")
    assert imp > 0.30                 # 4 software hashes replaced


def test_elastic_sketch_extension(run_once):
    def experiment():
        fg = FlowGenerator(1024, seed=34, distribution="zipf")
        trace = fg.trace(3000)
        out = {}
        for mode in ExecMode:
            rt = BpfRuntime(mode=mode, seed=34)
            nf = ElasticSketchNF(rt, heavy_buckets=256)
            result = XdpPipeline(nf).run(trace)
            out[mode.label] = (result.pps, dict(nf.paths))
        return out

    results = run_once(experiment)
    print()
    print("== Extension: ElasticSketch (heavy/light parts) ==")
    for label, (pps, paths) in results.items():
        print(f"  {label:8s}: {pps / 1e6:5.2f} Mpps  paths={paths}")
    imp = results["eNetSTL"][0] / results["eBPF"][0] - 1
    print(f"  eNetSTL over eBPF: +{imp:.1%}")
    assert imp > 0.10
    # All builds make identical heavy/light decisions.
    assert results["eBPF"][1] == results["eNetSTL"][1] == results["Kernel"][1]


def test_maglev_no_degradation(run_once):
    """Table 1's checkmark rows: Maglev suffers no eBPF degradation."""

    def experiment():
        fg = FlowGenerator(1024, seed=35)
        trace = fg.trace(3000)
        out = {}
        for mode in ExecMode:
            rt = BpfRuntime(mode=mode, seed=35)
            nf = MaglevNF(rt)
            out[mode.label] = XdpPipeline(nf).run(trace).pps
        return out

    results = run_once(experiment)
    print()
    print("== Extension: Maglev — the no-degradation counterpoint ==")
    for label, pps in results.items():
        print(f"  {label:8s}: {pps / 1e6:5.2f} Mpps")
    degradation = 1 - results["eBPF"] / results["Kernel"]
    improvement = results["eNetSTL"] / results["eBPF"] - 1
    print(f"  eBPF degradation vs kernel: {degradation:.1%}; "
          f"eNetSTL improvement: +{improvement:.1%}")
    assert degradation < 0.08
    assert improvement < 0.08


def test_bloom_filter_extension(run_once):
    def experiment():
        fg = FlowGenerator(1024, seed=33)
        trace = fg.trace(3000)
        out = {}
        for mode in ExecMode:
            rt = BpfRuntime(mode=mode, seed=33)
            nf = BloomFilterNF(rt, n_hashes=4)
            nf.populate(f.key_int for f in fg.flows)
            out[mode.label] = XdpPipeline(nf).run(trace).pps
        return out

    results = run_once(experiment)
    print()
    print("== Extension: Bloom filter (hash_simd_setbits/testbits) ==")
    for label, pps in results.items():
        print(f"  {label:8s}: {pps / 1e6:5.2f} Mpps")
    imp = results["eNetSTL"] / results["eBPF"] - 1
    print(f"  eNetSTL over eBPF: +{imp:.1%}")
    assert imp > 0.30
