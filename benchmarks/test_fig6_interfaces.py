"""Fig. 6: rational abstraction — high-level vs per-instruction kfuncs."""

import repro.analysis as a


def test_fig6_interfaces(run_once):
    comparison = run_once(a.fig6_interface_comparison)
    print()
    print(a.render_interfaces(comparison))
    # Paper: the low-level interfaces degrade performance 59.0%..73.1%.
    for name, data in comparison.items():
        assert 0.55 <= data["degradation"] <= 0.76, name
        assert data["low"] > data["high"]
