"""Latency & SLO-recovery benchmark (PR 8's acceptance numbers).

Not a pytest module — run it directly:

    PYTHONPATH=src python benchmarks/bench_slo.py [--quick] [--out PATH]

Measures, and self-asserts, the latency-faithful receive path and the
SLO control loop on top of it:

1. **Latency vs offered load** — a fixed 4-core fleet under steady
   Poisson arrivals from well under to well over capacity, plus one
   flash-crowd run: p50/p95/p99 sojourn latency and queue-overflow
   drops per operating point.  Latency must rise monotonically from
   the lightest to the heaviest load, overflow must appear only past
   saturation, and cycle totals must be bit-identical to a run with
   the queueing model off (the determinism contract).
2. **Disruption: crash vs wedge** — the SLO controller drives the same
   scenario with a core crash and a core wedge: time-to-SLO (first
   breach -> sustained compliance) is recorded for each; the wedge
   must lose packets before detection, the crash must not.
3. **Autoscaler ablation** — the acceptance scenario: a crash leaves a
   2-of-4-core fleet under-provisioned for the offered load.  With the
   autoscaler the parked cores absorb the breach and p99 returns under
   target; with a fixed fleet (and the dead core gone for good) it
   never does.  Asserted, both ways, plus run-to-run determinism.

Results land in ``BENCH_PR8.json`` next to the repo root; the CI
``slo-smoke`` job re-runs ``--quick`` and re-checks the JSON schema.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.analysis.hostmeta import host_metadata
from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.faults import FaultPlan, WedgeDetection
from repro.net.flowgen import FlowGenerator
from repro.net.multicore import RssDispatcher
from repro.net.queueing import ArrivalProcess, QueueingConfig
from repro.net.slo import SloConfig, SloController
from repro.nfs import CountMinNF
from repro.nfs.degrade import ColdStartWarmup

N_CORES = 4
N_FLOWS = 1024
ZIPF_S = 1.1
TARGET_P99_US = 60.0
#: Steady offered loads (pps): ~0.2x, 0.5x, 0.9x, 1.2x, 2.4x of what a
#: 4-core count-min fleet sustains (~20 Mpps).
LOADS = (4e6, 1e7, 1.8e7, 2.4e7, 4.8e7)


def factory(core: int) -> CountMinNF:
    return CountMinNF(BpfRuntime(mode=ExecMode.ENETSTL, seed=core), depth=4)


def bursty_trace(n_packets: int, arrivals: ArrivalProcess):
    fg = FlowGenerator(
        n_flows=N_FLOWS, seed=5, distribution="zipf", zipf_s=ZIPF_S
    )
    return list(fg.iter_trace_bursty(n_packets, arrivals))


def latency_suite(n_packets: int) -> dict:
    out = {
        "n_packets": n_packets,
        "n_cores": N_CORES,
        "loads": {},
    }
    p99s = []
    for pps in LOADS:
        trace = bursty_trace(n_packets, ArrivalProcess(pps, seed=5))
        result = RssDispatcher(
            factory, n_cores=N_CORES, queueing=QueueingConfig()
        ).run(trace)
        assert result.is_fully_accounted, (
            f"{pps} pps: accounting broken: {result.accounting()}"
        )
        summary = result.latency_summary()
        out["loads"][f"{pps:.0f}"] = {
            "latency": summary,
            "overflow": result.overflow_drops,
            "accounting": result.accounting(),
        }
        p99s.append(summary["p99_us"])
    assert p99s == sorted(p99s), (
        f"p99 must rise with offered load, got {p99s}"
    )
    light = out["loads"][f"{LOADS[0]:.0f}"]
    heavy = out["loads"][f"{LOADS[-1]:.0f}"]
    assert light["overflow"] == 0, "no overflow far below capacity"
    assert heavy["overflow"] > 0, "sustained 2.4x overload must overflow"

    # Flash crowd: steady base, a burst past capacity, back to base.
    flash = ArrivalProcess.flash_crowd(
        8e6, 4.8e7, lead_s=0.0002, burst_s=0.0004, seed=5
    )
    result = RssDispatcher(
        factory, n_cores=N_CORES, queueing=QueueingConfig()
    ).run(bursty_trace(n_packets, flash))
    assert result.is_fully_accounted
    steady_p99 = out["loads"][f"{LOADS[0]:.0f}"]["latency"]["p99_us"]
    out["flash_crowd"] = {
        "spec": flash.describe(),
        "latency": result.latency_summary(),
        "overflow": result.overflow_drops,
    }
    assert out["flash_crowd"]["latency"]["p99_us"] > steady_p99, (
        "the flash crowd must push the tail past the steady baseline"
    )

    # Determinism contract: the model adds information, never charges.
    trace = bursty_trace(min(n_packets, 6000), ArrivalProcess(1e7, seed=5))
    plain = RssDispatcher(factory, n_cores=N_CORES).run(trace)
    queued = RssDispatcher(
        factory, n_cores=N_CORES, queueing=QueueingConfig()
    ).run(trace)
    assert queued.total_cycles == plain.total_cycles, (
        "queueing on/off must not change cycle totals"
    )
    assert queued.actions == plain.actions
    out["queueing_off_identity"] = {
        "total_cycles": plain.total_cycles,
        "identical": True,
    }
    return out


def controlled_run(
    trace,
    *,
    autoscale: bool,
    rejoin_epochs: int,
    faults: FaultPlan = None,
    detection: WedgeDetection = None,
):
    return SloController(
        factory,
        max_cores=N_CORES,
        initial_cores=2,
        queueing=QueueingConfig(),
        config=SloConfig(
            target_p99_us=TARGET_P99_US,
            epoch_packets=512,
            autoscale=autoscale,
            rejoin_epochs=rejoin_epochs,
        ),
        faults=faults,
        detection=detection,
        warmup=ColdStartWarmup(),
    ).run(trace)


def disruption_suite(n_packets: int) -> dict:
    trace = bursty_trace(n_packets, ArrivalProcess(8e6, seed=5))
    out = {"n_packets": n_packets, "target_p99_us": TARGET_P99_US}
    for kind, plan in (
        ("crash", FaultPlan(crash_core=1, crash_at=1500)),
        ("wedge", FaultPlan(wedge_core=1, wedge_at=1500)),
    ):
        run = controlled_run(
            trace,
            autoscale=True,
            rejoin_epochs=4,
            faults=plan,
            detection=WedgeDetection(
                mean_packets=512, min_packets=64, seed=2
            ),
        )
        assert run.is_fully_accounted, (
            f"{kind}: accounting broken: {run.accounting()}"
        )
        assert len(run.failures) == 1 and run.failures[0].kind == kind
        recovery = run.recovery_s()
        assert recovery is not None, f"{kind}: fleet never recovered"
        out[kind] = {
            "failure": run.failures[0].describe(),
            "recovery_s": recovery,
            "worst_p99_us": run.worst_p99_us,
            "violating_epochs": run.violating_epochs(),
            "latency": run.latency_summary(),
            "accounting": run.accounting(),
        }
    # A wedge silently eats packets until detected; a crash does not.
    assert out["wedge"]["failure"]["lost"] > 0
    assert out["crash"]["failure"]["lost"] == 0
    return out


def ablation_suite(n_packets: int) -> dict:
    trace = bursty_trace(n_packets, ArrivalProcess(8e6, seed=5))
    plan = FaultPlan(crash_core=1, crash_at=1500)
    scaled = controlled_run(
        trace, autoscale=True, rejoin_epochs=0, faults=plan
    )
    fixed = controlled_run(
        trace, autoscale=False, rejoin_epochs=0, faults=plan
    )
    assert scaled.is_fully_accounted and fixed.is_fully_accounted
    assert scaled.violating_epochs(), "the crash must breach the SLO"
    assert scaled.recovery_s() is not None, (
        "with the autoscaler, p99 must return under target"
    )
    assert fixed.recovery_s() is None, (
        "without it (and the core gone for good), it must not"
    )
    assert (
        scaled.latency_summary()["p99_us"] < fixed.latency_summary()["p99_us"]
    )

    again = controlled_run(
        trace, autoscale=True, rejoin_epochs=0, faults=plan
    )
    deterministic = (
        [e.describe() for e in again.timeline]
        == [e.describe() for e in scaled.timeline]
        and again.latencies_ns == scaled.latencies_ns
    )
    assert deterministic, "same scenario must replay bit-identically"

    def summarize(run):
        return {
            "latency": run.latency_summary(),
            "worst_p99_us": run.worst_p99_us,
            "violating_epochs": run.violating_epochs(),
            "recovery_s": run.recovery_s(),
            "accounting": run.accounting(),
            "timeline": [e.describe() for e in run.timeline],
        }

    return {
        "n_packets": n_packets,
        "target_p99_us": TARGET_P99_US,
        "scenario": "2 of 4 cores active, core 1 crashes at packet 1500, "
        "8 Mpps steady offered load, dead core never repaired",
        "autoscale_on": summarize(scaled),
        "autoscale_off": summarize(fixed),
        "deterministic": deterministic,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run (fewer packets; same assertions)",
    )
    parser.add_argument(
        "--out",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR8.json"
        ),
    )
    args = parser.parse_args(argv)
    n_packets = 10_000 if args.quick else 24_000

    print(f"latency vs offered load ({n_packets} packets/point) ...")
    latency = latency_suite(n_packets)
    for pps, entry in latency["loads"].items():
        lat = entry["latency"]
        print(
            f"  {float(pps)/1e6:5.1f} Mpps: p50 {lat['p50_us']:7.1f}  "
            f"p95 {lat['p95_us']:7.1f}  p99 {lat['p99_us']:7.1f} us, "
            f"overflow {entry['overflow']}"
        )
    flash = latency["flash_crowd"]["latency"]
    print(f"  flash crowd: p99 {flash['p99_us']:.1f} us, "
          f"overflow {latency['flash_crowd']['overflow']}")

    print("disruption suite (crash vs wedge, SLO loop on) ...")
    disruption = disruption_suite(max(n_packets, 12_000))
    for kind in ("crash", "wedge"):
        entry = disruption[kind]
        print(
            f"  {kind}: lost {entry['failure']['lost']}, time-to-SLO "
            f"{entry['recovery_s'] * 1e3:.2f} ms, worst p99 "
            f"{entry['worst_p99_us']:.1f} us"
        )

    print("autoscaler ablation ...")
    ablation = ablation_suite(max(n_packets, 12_000))
    on, off = ablation["autoscale_on"], ablation["autoscale_off"]
    print(
        f"  on:  p99 {on['latency']['p99_us']:6.1f} us, recovery "
        f"{on['recovery_s'] * 1e3:.2f} ms"
    )
    print(
        f"  off: p99 {off['latency']['p99_us']:6.1f} us, recovery never "
        f"({len(off['violating_epochs'])} violating epochs)"
    )

    payload = {
        "benchmark": "PR8 latency-faithful receive path + SLO-aware "
        "resilience control loop",
        "host": host_metadata(),
        "quick": args.quick,
        "target_p99_us": TARGET_P99_US,
        "latency_vs_load": latency,
        "disruption": disruption,
        "autoscaler_ablation": ablation,
        "zero_uncaught_exceptions": True,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    print(
        f"  acceptance: autoscaled p99 recovers to "
        f"{TARGET_P99_US:.0f} us in {on['recovery_s'] * 1e3:.2f} ms; "
        f"fixed fleet never does"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
