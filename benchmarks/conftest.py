"""Shared benchmark plumbing.

Every bench runs its experiment once per round (the workloads are
deterministic, so more iterations only re-measure Python overhead),
prints the paper-style table, and asserts the reproduction band.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` through pytest-benchmark with one warm round."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=3, iterations=1, warmup_rounds=0)

    return runner
