"""Ablation: sensitivity of the eNetSTL-vs-kernel gap to crossing costs.

DESIGN.md calls out two design choices this bench quantifies:

1. **kfunc-call overhead**: the whole high-level-interface argument
   rests on keeping eBPF<->library crossings rare.  Sweeping the
   per-call cost shows the kernel gap scaling with it — and why
   per-instruction interfaces (many crossings) lose (Fig. 6).
2. **helper-call overhead**: the pure-eBPF baseline's pain scales with
   the helper cost; sweeping it moves the eNetSTL improvement, which
   bounds how sensitive the headline ratios are to that calibration.
"""

from repro.ebpf.cost_model import CostModel, ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.xdp import XdpPipeline
from repro.nfs import CountMinNF


def _cycles(mode: ExecMode, costs: CostModel, trace) -> float:
    rt = BpfRuntime(mode=mode, costs=costs, seed=5)
    nf = CountMinNF(rt, depth=8)
    return XdpPipeline(nf).run(trace).cycles_per_packet


def test_kfunc_cost_sensitivity(run_once):
    trace = FlowGenerator(256, seed=5).trace(800)

    def experiment():
        out = {}
        for kfunc_cost in (7, 20, 40, 80):
            costs = CostModel().scaled(kfunc_call=kfunc_cost)
            enet = _cycles(ExecMode.ENETSTL, costs, trace)
            kern = _cycles(ExecMode.KERNEL, costs, trace)
            out[kfunc_cost] = 1.0 - kern / enet
        return out

    gaps = run_once(experiment)
    print()
    print("== Ablation: kernel gap vs kfunc-call cost (count-min, k=8) ==")
    for cost, gap in gaps.items():
        print(f"  kfunc_call={cost:>3} cycles -> gap to kernel {gap:.2%}")
    # Monotone growth; stays small at the calibrated cost.
    values = list(gaps.values())
    assert all(values[i] < values[i + 1] for i in range(len(values) - 1))
    assert gaps[7] < 0.04
    assert gaps[80] > 3 * gaps[7]


def test_helper_cost_sensitivity(run_once):
    trace = FlowGenerator(256, seed=5).trace(800)

    def experiment():
        out = {}
        for scale in (0.5, 1.0, 2.0):
            costs = CostModel().scaled(
                hash_scalar=int(CostModel().hash_scalar * scale)
            )
            ebpf = _cycles(ExecMode.PURE_EBPF, costs, trace)
            enet = _cycles(ExecMode.ENETSTL, costs, trace)
            out[scale] = ebpf / enet - 1.0
        return out

    imps = run_once(experiment)
    print()
    print("== Ablation: eNetSTL improvement vs software-hash cost ==")
    for scale, imp in imps.items():
        print(f"  hash_scalar x{scale:<4} -> improvement +{imp:.1%}")
    # The headline ratio moves with the calibration, but the *ordering*
    # (eNetSTL wins) holds across a 4x range of software-hash costs.
    assert all(imp > 0.0 for imp in imps.values())
    assert imps[2.0] > imps[1.0] > imps[0.5]
