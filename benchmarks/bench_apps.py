"""Fig. 7 apps, measured end-to-end (PR 10's acceptance numbers).

Not a pytest module — run it directly:

    PYTHONPATH=src python benchmarks/bench_apps.py [--quick] [--out PATH]

Measures, and self-asserts, the verified-IR app ports of
:mod:`repro.apps.ir`: each of the four Fig. 7 pipelines (katran,
rakelimit, polycube, sketches) replayed as

1. ``interp`` — the interpreted chain (the cost-model era's stand-in),
2. ``jit``    — per-NF compiled closures,
3. ``fused``  — the whole chain + batch loop in one closure with the
   app kfuncs (connection table, CH ring, level sketches, FDB, heap)
   expanded inline,

single-core and at 4 cores under :class:`RssDispatcher` with ntuple
steering, every configuration witness-checked bit-identical against
the interpreted build — clean and under a :mod:`repro.faults` chaos
schedule.

The capstone is the **cluster day**: the fused Katran pipeline
fronting a Zipf flow population with connection churn, a mid-run
backend failure (control-plane CH-ring repack + connection eviction,
visible to the already-fused closures), a flash crowd on the arrival
process, RX-ring queueing, and chaos faults — reporting aggregate
mpps, p99 sojourn latency per phase, and Maglev failover disruption.
The same phased scenario replays on the interpreted backend and must
match the fused run bit for bit.

Results land in ``BENCH_PR10.json`` next to the repo root; the CI
``apps-smoke`` job runs the ``--quick`` variant and re-checks the
self-assertions plus the JSON schema.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.analysis.hostmeta import host_metadata
from repro.apps.ir import (
    IR_APP_NAMES,
    app_chain,
    app_nf,
    app_nf_factory,
    ir_registry,
)
from repro.ebpf import fuse
from repro.ebpf.cost_model import CPU_HZ
from repro.ebpf.runtime import BpfRuntime
from repro.ebpf.verifier import Verifier
from repro.faults import FaultPlan
from repro.net.flowgen import FlowGenerator
from repro.net.multicore import RssDispatcher
from repro.net.queueing import ArrivalProcess, QueueingConfig

BACKENDS = ("interp", "jit", "fused")

#: Timing repetitions per configuration (fresh state each; min wins).
REPS = 3

N_CORES = 4

#: Chaos schedule every parity leg must survive bit-identically.
CHAOS = FaultPlan(
    seed=77,
    drop_rate=0.02,
    corrupt_rate=0.02,
    truncate_rate=0.01,
    helper_rate=0.02,
    map_full_rate=0.02,
)

#: The backend the cluster-day control plane takes down mid-run.
FAILED_REAL = 3


def _trace(n_packets: int, n_flows: int = 1024, seed: int = 14):
    fg = FlowGenerator(
        n_flows=n_flows, distribution="zipf", zipf_s=1.1, seed=seed
    )
    return list(fg.trace(n_packets))


# -- single-core ------------------------------------------------------------


def _timed_single(app, backend, trace):
    """Best-of-REPS wall-clock for one app backend: (pps, witness)."""
    best = float("inf")
    witness = None
    for _ in range(REPS):
        rt = BpfRuntime(seed=1)
        nf = app_nf(app, rt=rt, backend=backend, seed=1,
                    registry=ir_registry(1))
        t0 = time.perf_counter()
        nf.process_batch(trace)
        dt = time.perf_counter() - t0
        best = min(best, dt)
        rep_witness = (tuple(nf.returns), rt.cycles.total,
                       nf.stats.insn_cycles, nf.stats.check_cycles)
        assert witness is None or witness == rep_witness, (
            f"{app}/{backend}: repetitions diverged"
        )
        witness = rep_witness
    return len(trace) / best, witness


# -- multicore --------------------------------------------------------------


def _dispatcher_witness(result, dispatcher):
    return (
        result.accounting(),
        tuple(sorted(result.errors.items())),
        result.total_cycles,
        tuple(sorted(result.injected.items())),
        tuple(tuple(nf.returns) for nf in dispatcher.nfs),
    )


def _timed_multicore(app, backend, trace, faults=None):
    best = float("inf")
    witness = None
    for _ in range(REPS):
        disp = RssDispatcher(
            app_nf_factory(app, backend=backend, registry_seed=2),
            n_cores=N_CORES,
            steering="ntuple",
            faults=faults,
        )
        t0 = time.perf_counter()
        result = disp.run(trace)
        dt = time.perf_counter() - t0
        best = min(best, dt)
        assert result.is_fully_accounted, f"{app}/{backend}: accounting"
        rep_witness = _dispatcher_witness(result, disp)
        assert witness is None or witness == rep_witness, (
            f"{app}/{backend}/{N_CORES}c: repetitions diverged"
        )
        witness = rep_witness
    return len(trace) / best, witness


# -- suites -----------------------------------------------------------------


def apps_suite(n_packets: int, bar_vs_interp: float) -> dict:
    """The Fig. 7 component-swap bars, measured: per app, wall-clock
    pps for interp/jit/fused with bit-identity asserted throughout."""
    trace = _trace(n_packets)
    out = {
        "n_packets": n_packets,
        "n_cores": N_CORES,
        "min_fused_over_interp": bar_vs_interp,
        "apps": {},
    }
    for app in IR_APP_NAMES:
        reg = ir_registry(0)
        verifier = Verifier(reg)
        verified = [verifier.verify(p) for p in app_chain(app)]
        t0 = time.perf_counter()
        fused = fuse.fuse_chain(reg, verified)
        compile_ms = (time.perf_counter() - t0) * 1000

        entry = {
            "chain": [p.name for p in app_chain(app)],
            "compile_ms": round(compile_ms, 3),
            "fused_nodes": fused.n_nodes,
            "inlined_kfuncs": fused.inlined_kfuncs,
        }

        pps, witnesses = {}, {}
        for backend in BACKENDS:
            pps[backend], witnesses[backend] = _timed_single(
                app, backend, trace)
        assert witnesses["jit"] == witnesses["interp"], (
            f"{app}: jit diverged from interp")
        assert witnesses["fused"] == witnesses["interp"], (
            f"{app}: fused diverged from interp")
        entry["single_core"] = {
            "interp_pps": round(pps["interp"]),
            "jit_pps": round(pps["jit"]),
            "fused_pps": round(pps["fused"]),
            "fused_over_jit": round(pps["fused"] / pps["jit"], 3),
            "fused_over_interp": round(pps["fused"] / pps["interp"], 3),
            "bit_identical": True,
            "cycle_total": witnesses["interp"][1],
        }
        assert entry["single_core"]["fused_over_interp"] >= bar_vs_interp, (
            f"{app}: fused {entry['single_core']['fused_over_interp']}x "
            f"over interp is below the {bar_vs_interp}x acceptance bar"
        )

        mpps, mwit = {}, {}
        for backend in ("jit", "fused"):
            mpps[backend], mwit[backend] = _timed_multicore(
                app, backend, trace)
        assert mwit["fused"] == mwit["jit"], (
            f"{app}: {N_CORES}-core fused diverged from jit")
        _, chaos_j = _timed_multicore(app, "jit", trace, faults=CHAOS)
        _, chaos_f = _timed_multicore(app, "fused", trace, faults=CHAOS)
        assert chaos_f == chaos_j, (
            f"{app}: fused diverged from jit under chaos")
        entry["multicore"] = {
            "jit_pps": round(mpps["jit"]),
            "fused_pps": round(mpps["fused"]),
            "fused_over_jit": round(mpps["fused"] / mpps["jit"], 3),
            "bit_identical": True,
            "bit_identical_chaos": True,
        }
        out["apps"][app] = entry
    return out


# -- cluster day ------------------------------------------------------------


def _cluster_trace(n_packets: int, n_flows: int, seed: int):
    """Zipf flows stamped by a flash-crowd arrival process: steady
    load for the first ~half, a burst at several times the base rate,
    then steady again."""
    gen = FlowGenerator(
        n_flows=n_flows, distribution="zipf", zipf_s=1.1, seed=seed
    )
    base_pps = 500_000.0
    lead_s = (n_packets / 2) / base_pps
    arrivals = ArrivalProcess.flash_crowd(
        base_pps=base_pps,
        peak_pps=3_500_000.0,
        lead_s=lead_s,
        burst_s=(n_packets / 4) / 3_500_000.0,
        seed=seed,
    )
    return list(gen.iter_trace_bursty(n_packets, arrivals))


def _run_cluster_day(backend: str, trace, n_cores: int, queueing):
    """One phased cluster-day pass: steady+churn, backend failure,
    flash crowd + recovery.  Returns (phase results, failover reports,
    witness)."""
    split = len(trace) // 2
    disp = RssDispatcher(
        app_nf_factory("katran", backend=backend, registry_seed=4),
        n_cores=n_cores,
        steering="ntuple",
        queueing=queueing,
        faults=CHAOS,
    )
    res1 = disp.run(trace[:split])
    # Control plane: one backend dies fleet-wide; every core's CH ring
    # repacks in place and sheds that real's connections.
    reports = [
        nf.registry.app_state.katran.fail_real(FAILED_REAL)
        for nf in disp.nfs
    ]
    res2 = disp.run(trace[split:])
    for res in (res1, res2):
        assert res.is_fully_accounted, f"cluster-day {backend}: accounting"
    witness = (
        _dispatcher_witness(res1, disp)[:4],
        _dispatcher_witness(res2, disp)[:4],
        tuple(res1.latencies_ns),
        tuple(res2.latencies_ns),
        tuple(sorted((k, v) for r in reports for k, v in r.items())),
    )
    return (res1, res2), reports, witness


def cluster_day_suite(n_packets: int, n_flows: int, n_cores: int) -> dict:
    queueing = QueueingConfig(rx_ring_size=256, batch_timeout_ns=20_000)
    trace = _cluster_trace(n_packets, n_flows, seed=9)

    t0 = time.perf_counter()
    (res1, res2), reports, fused_wit = _run_cluster_day(
        "fused", trace, n_cores, queueing)
    wall = time.perf_counter() - t0

    # Strict parity: the interpreted fleet replays the same day —
    # same phases, same failure, same chaos — bit for bit.
    _, _, interp_wit = _run_cluster_day("interp", trace, n_cores, queueing)
    assert fused_wit == interp_wit, (
        "cluster day: fused fleet diverged from interpreted fleet")

    moved = sum(r["moved"] for r in reports)
    evicted = sum(r["evicted"] for r in reports)
    ring = reports[0]["ring_size"]
    disruption = moved / (ring * len(reports))
    total_packets = res1.packets_in + res2.packets_in
    total_cycles = res1.total_cycles + res2.total_cycles
    return {
        "backend": "fused",
        "n_packets": n_packets,
        "n_flows": n_flows,
        "n_cores": n_cores,
        "failed_real": FAILED_REAL,
        "phases": {
            "steady_churn": {
                "packets": res1.packets_in,
                "aggregate_mpps": round(res1.aggregate_mpps, 4),
                "p50_latency_us": round(res1.p50_latency_us, 3),
                "p99_latency_us": round(res1.p99_latency_us, 3),
                "overflow_drops": res1.overflow_drops,
                "injected": dict(res1.injected),
                "actions": dict(res1.actions),
            },
            "flash_crowd": {
                "packets": res2.packets_in,
                "aggregate_mpps": round(res2.aggregate_mpps, 4),
                "p50_latency_us": round(res2.p50_latency_us, 3),
                "p99_latency_us": round(res2.p99_latency_us, 3),
                "overflow_drops": res2.overflow_drops,
                "injected": dict(res2.injected),
                "actions": dict(res2.actions),
            },
        },
        "failover": {
            "disruption": round(disruption, 4),
            "ring_slots_moved": moved,
            "connections_evicted": evicted,
            "per_core": reports,
        },
        "aggregate_mpps": round(
            total_packets * CPU_HZ / 1e6
            / max(1, total_cycles / n_cores), 4
        ),
        "model_mpps_phase_max": round(
            max(res1.aggregate_mpps, res2.aggregate_mpps), 4
        ),
        "wall_seconds": round(wall, 3),
        "wall_pps": round(total_packets / wall) if wall > 0 else 0,
        "interp_parity": True,
    }


def check_schema(payload: dict) -> None:
    """The shape CI asserts — host block with CPU metadata, per-app
    single/multicore sections with parity flags, and the cluster day."""
    host = payload["host"]
    assert "cpu_count" in host and "cpu_affinity" in host, (
        "host block must record cpu_count and cpu_affinity")
    apps = payload["apps"]["apps"]
    assert set(apps) == set(IR_APP_NAMES), sorted(apps)
    for name, entry in apps.items():
        sc = entry["single_core"]
        assert sc["bit_identical"] is True, name
        assert sc["fused_over_interp"] > 1.0, name
        mc = entry["multicore"]
        assert mc["bit_identical"] is True, name
        assert mc["bit_identical_chaos"] is True, name
    day = payload["cluster_day"]
    assert day["interp_parity"] is True
    assert day["aggregate_mpps"] > 0
    assert day["failover"]["connections_evicted"] >= 0
    assert 0.0 <= day["failover"]["disruption"] <= 1.0
    for phase in day["phases"].values():
        assert phase["p99_latency_us"] >= phase["p50_latency_us"] >= 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run (fewer packets, 2 cores for the cluster "
             "day; relaxed speedup bar to absorb runner noise)",
    )
    parser.add_argument("--packets", type=int, default=None)
    parser.add_argument(
        "--out",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent
            / "BENCH_PR10.json"
        ),
    )
    args = parser.parse_args(argv)
    n_packets = args.packets or (1500 if args.quick else 6000)
    bar_vs_interp = 2.0 if args.quick else 3.0
    day_packets = 2000 if args.quick else 20000
    day_flows = 512 if args.quick else 8192
    day_cores = 2 if args.quick else N_CORES

    print(f"apps suite ({n_packets} packets x {len(IR_APP_NAMES)} apps x "
          f"{len(BACKENDS)} backends, single-core + {N_CORES} cores, "
          f"best of {REPS}) ...")
    apps = apps_suite(n_packets, bar_vs_interp)
    for name, d in apps["apps"].items():
        s, m = d["single_core"], d["multicore"]
        print(f"  {name:>10}: 1-core interp {s['interp_pps']:>7} -> "
              f"jit {s['jit_pps']:>7} -> fused {s['fused_pps']:>7} pps "
              f"({s['fused_over_interp']:.2f}x interp, "
              f"{s['fused_over_jit']:.2f}x jit)")
        print(f"              {N_CORES}-core jit {m['jit_pps']:>7} -> "
              f"fused {m['fused_pps']:>7} pps (chaos parity OK)")

    print(f"cluster day (fused katran, {day_packets} packets, "
          f"{day_flows} flows, {day_cores} cores, backend {FAILED_REAL} "
          f"fails mid-run, flash crowd + chaos + queueing) ...")
    day = cluster_day_suite(day_packets, day_flows, day_cores)
    print(f"  steady:  {day['phases']['steady_churn']['aggregate_mpps']} "
          f"mpps, p99 {day['phases']['steady_churn']['p99_latency_us']} us")
    print(f"  crowd:   {day['phases']['flash_crowd']['aggregate_mpps']} "
          f"mpps, p99 {day['phases']['flash_crowd']['p99_latency_us']} us")
    print(f"  failover: disruption {day['failover']['disruption']:.2%}, "
          f"{day['failover']['connections_evicted']} connections evicted")
    print("  interp parity: OK (bit-identical)")

    payload = {
        "benchmark": "PR10 Fig. 7 apps on the fast path (verified IR, "
                     "fused, multi-core, cluster day)",
        "host": host_metadata(),
        "quick": args.quick,
        "apps": apps,
        "cluster_day": day,
    }
    check_schema(payload)
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
