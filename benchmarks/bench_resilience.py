"""Resilience benchmark (PR 3's acceptance numbers).

Not a pytest module — run it directly:

    PYTHONPATH=src python benchmarks/bench_resilience.py [--quick] [--out PATH]

Measures, and self-asserts, the PR 3 fault-injection data plane:

1. **Fault-rate sweep** — 8-core Zipf replay at injected aggregate
   fault rates 0 / 0.1% / 1% / 5%: every run must complete with zero
   uncaught exceptions and *fully balanced* packet accounting
   (``packets_in + duplicated == forwarded + dropped + aborted``);
   aggregate PPS and loss are charted per rate.
2. **Watchdog** — the same replay with one core killed mid-run: the
   watchdog must detect the crash, re-steer the victim's traffic to the
   surviving cores, and the aggregate PPS before/after the failure is
   recorded.  A wedge run exercises the deadline detector the same way.
3. **Determinism** — two runs from the identical ``FaultPlan`` seed
   must produce bit-identical fault schedules and metrics; a different
   seed must not.

Results land in ``BENCH_PR3.json`` next to the repo root; the CI smoke
step re-checks the JSON's schema and the zero-crash guarantee.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.analysis.hostmeta import host_metadata
from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.faults import FaultPlan
from repro.net.flowgen import FlowGenerator
from repro.net.multicore import MulticoreResult, RssDispatcher
from repro.nfs import CountMinNF

N_CORES = 8
ZIPF_S = 1.1
N_FLOWS = 8192
FAULT_RATES = (0.0, 0.001, 0.01, 0.05)

#: The headline acceptance rate: "under 1% injected faults ...".
HEADLINE_RATE = 0.01


def factory(core: int) -> CountMinNF:
    return CountMinNF(BpfRuntime(mode=ExecMode.ENETSTL, seed=core), depth=4)


def zipf_stream(n_packets: int):
    fg = FlowGenerator(n_flows=N_FLOWS, seed=5, distribution="zipf", zipf_s=ZIPF_S)
    return fg.iter_trace(n_packets)


def run_fleet(n_packets: int, plan: FaultPlan = None,
              watchdog_deadline: int = 512) -> MulticoreResult:
    dispatcher = RssDispatcher(
        factory, n_cores=N_CORES, faults=plan,
        watchdog_deadline=watchdog_deadline,
    )
    return dispatcher.run(zipf_stream(n_packets))


def fault_rate_suite(n_packets: int) -> dict:
    out = {
        "n_packets": n_packets,
        "n_cores": N_CORES,
        "n_flows": N_FLOWS,
        "zipf_s": ZIPF_S,
        "rates": {},
    }
    baseline_mpps = None
    for rate in FAULT_RATES:
        plan = FaultPlan.uniform(rate, seed=11) if rate else None
        result = run_fleet(n_packets, plan)
        assert result.is_fully_accounted, (
            f"rate {rate}: accounting broken: {result.accounting()}"
        )
        acc = result.accounting()
        # Loss = packets that did not make it through as forwarded or a
        # deliberate NF verdict: injected drops + aborts, over offered.
        injected_loss = (
            result.injected.get("pkt_drop", 0)
            + result.aborted
        )
        entry = {
            "accounting": acc,
            "accounted": True,
            "aggregate_mpps": round(result.aggregate_mpps, 3),
            "injected": dict(result.injected),
            "total_injected": sum(result.injected.values()),
            "errors": dict(result.errors),
            "injected_loss_fraction": round(injected_loss / acc["packets_in"], 6),
        }
        out["rates"][str(rate)] = entry
        if rate == 0.0:
            baseline_mpps = entry["aggregate_mpps"]
            assert entry["total_injected"] == 0
        else:
            assert entry["total_injected"] > 0, f"rate {rate}: nothing injected"
    headline = out["rates"][str(HEADLINE_RATE)]
    assert headline["accounted"], "headline 1% run must balance"
    assert sum(headline["errors"].values()) > 0, (
        "1% faults must surface in the error counters"
    )
    out["baseline_mpps"] = baseline_mpps
    return out


def watchdog_suite(n_packets: int) -> dict:
    healthy = run_fleet(n_packets, FaultPlan.uniform(HEADLINE_RATE, seed=11))
    pps_before = healthy.aggregate_mpps

    crash_plan = FaultPlan.uniform(
        HEADLINE_RATE, seed=11, crash_core=3, crash_at=n_packets // (4 * N_CORES)
    )
    crashed = run_fleet(n_packets, crash_plan)
    assert crashed.is_fully_accounted, (
        f"crash run accounting broken: {crashed.accounting()}"
    )
    assert len(crashed.failures) == 1 and crashed.failures[0].kind == "crash", (
        "watchdog must detect exactly the killed core"
    )
    failure = crashed.failures[0]
    assert failure.resteered > 0, "crash must re-steer traffic to survivors"
    assert crashed.lost == 0, "a detected crash loses no packets"
    # 7 survivors absorb the victim's flows: the fleet completes the
    # whole trace, at lower aggregate throughput than the healthy run.
    pps_after = crashed.aggregate_mpps
    assert pps_after < pps_before, (
        f"losing a core must cost throughput ({pps_after} !< {pps_before})"
    )

    wedge_plan = FaultPlan.uniform(
        HEADLINE_RATE, seed=11, wedge_core=2, wedge_at=n_packets // (4 * N_CORES)
    )
    wedged = run_fleet(n_packets, wedge_plan, watchdog_deadline=512)
    assert wedged.is_fully_accounted, (
        f"wedge run accounting broken: {wedged.accounting()}"
    )
    assert len(wedged.failures) == 1 and wedged.failures[0].kind == "wedge"
    assert wedged.lost > 0, "a wedge loses the packets behind the stall"
    assert wedged.lost >= min(512, 1), "deadline governs wedge loss"

    return {
        "n_packets": n_packets,
        "aggregate_mpps_before": round(pps_before, 3),
        "crash": {
            "aggregate_mpps_after": round(pps_after, 3),
            "failure": failure.describe(),
            "accounting": crashed.accounting(),
        },
        "wedge": {
            "aggregate_mpps_after": round(wedged.aggregate_mpps, 3),
            "failure": wedged.failures[0].describe(),
            "watchdog_deadline": 512,
            "accounting": wedged.accounting(),
        },
    }


def determinism_suite(n_packets: int) -> dict:
    plan = FaultPlan.uniform(HEADLINE_RATE, seed=77)
    a = run_fleet(n_packets, plan)
    b = run_fleet(n_packets, FaultPlan.uniform(HEADLINE_RATE, seed=77))
    identical = (
        a.accounting() == b.accounting()
        and a.injected == b.injected
        and a.errors == b.errors
        and a.per_core_cycles == b.per_core_cycles
    )
    assert identical, "identical seeds must reproduce bit-identical runs"
    c = run_fleet(n_packets, FaultPlan.uniform(HEADLINE_RATE, seed=78))
    diverged = c.injected != a.injected or c.accounting() != a.accounting()
    assert diverged, "different seeds must produce different schedules"
    return {
        "n_packets": n_packets,
        "same_seed_bit_identical": identical,
        "different_seed_diverges": diverged,
        "schedule_fingerprint": dict(a.injected),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run (fewer packets; same assertions)",
    )
    parser.add_argument(
        "--out",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR3.json"
        ),
    )
    args = parser.parse_args(argv)
    n_packets = 8000 if args.quick else 24000

    print(f"fault-rate sweep ({n_packets} packets, rates {FAULT_RATES}) ...")
    sweep = fault_rate_suite(n_packets)
    for rate, entry in sweep["rates"].items():
        print(
            f"  rate {rate:>5}: {entry['aggregate_mpps']:6.2f} Mpps, "
            f"{entry['total_injected']} injected, "
            f"loss {entry['injected_loss_fraction']:.4f}"
        )

    print("watchdog suite (crash + wedge) ...")
    watchdog = watchdog_suite(n_packets)
    print(
        f"  crash: {watchdog['aggregate_mpps_before']:.2f} -> "
        f"{watchdog['crash']['aggregate_mpps_after']:.2f} Mpps, "
        f"re-steered {watchdog['crash']['failure']['resteered']}"
    )
    print(
        f"  wedge: lost {watchdog['wedge']['failure']['lost']} before "
        f"deadline, re-steered {watchdog['wedge']['failure']['resteered']}"
    )

    print("determinism suite ...")
    determinism = determinism_suite(min(n_packets, 8000))

    payload = {
        "benchmark": "PR3 fault-injection + graceful degradation + watchdog recovery",
        "host": host_metadata(),
        "quick": args.quick,
        "fault_rates": sweep,
        "watchdog": watchdog,
        "determinism": determinism,
        "zero_uncaught_exceptions": True,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    print(
        f"  1% faults: {sweep['rates'][str(HEADLINE_RATE)]['aggregate_mpps']} Mpps "
        f"(baseline {sweep['baseline_mpps']}), accounting balanced everywhere"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
