"""Wall-clock benchmark for the parallel + cached experiment runner.

Not a pytest module — run it directly:

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--packets N] [--out PATH]

Measures three executions of the same experiment matrix:

1. ``serial_cold``   — jobs=1, no cache (the pre-PR execution model);
2. ``parallel_cold`` — ``--jobs auto``, empty cache (fan-out only);
3. ``warm_cache``    — ``--jobs auto``, cache populated by run 2.

and records the multicore RSS scaling curve (aggregate PPS for 1..8
cores over a uniform trace, plus the Zipf load-imbalance factor at 8
cores).  Results land in ``BENCH_PR1.json`` next to the repo root.

On a single-CPU container ``parallel_cold`` cannot beat ``serial_cold``
(there is nothing to fan out onto); the recorded >= 2x speedup comes
from the warm result cache, which is the steady state for repeat
report/CI runs.  All three numbers are recorded honestly so multi-core
machines can see the fan-out win too.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.analysis.hostmeta import host_metadata
from repro.analysis.parallel import ResultCache, resolve_jobs, run_experiments
from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.multicore import RssDispatcher
from repro.net.xdp import XdpPipeline
from repro.nfs import CountMinNF

#: The matrix the benchmark replays (the full Fig. 3 sweep set).
BENCH_EXPERIMENTS = (
    "fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f", "fig3g", "fig3h",
)


def time_run(names, n_packets, jobs, cache):
    start = time.perf_counter()
    results = run_experiments(names, n_packets=n_packets, jobs=jobs, cache=cache)
    return time.perf_counter() - start, results


def multicore_scaling(n_packets=16000, max_cores=8):
    """Aggregate-PPS scaling of the RSS data plane, 1..max_cores."""
    factory = lambda core: CountMinNF(
        BpfRuntime(mode=ExecMode.ENETSTL, seed=core), depth=4
    )
    uniform = FlowGenerator(n_flows=2048, seed=5).trace(n_packets)
    zipf = FlowGenerator(n_flows=2048, seed=5, distribution="zipf").trace(n_packets)
    single = XdpPipeline(factory(0)).run(uniform)
    curve = []
    for n_cores in range(1, max_cores + 1):
        result = RssDispatcher(factory, n_cores=n_cores).run(uniform)
        curve.append(
            {
                "cores": n_cores,
                "aggregate_mpps": round(result.aggregate_mpps, 3),
                "speedup": round(result.speedup_over(single), 3),
                "imbalance": round(result.imbalance, 4),
            }
        )
    zipf_result = RssDispatcher(factory, n_cores=max_cores).run(zipf)
    return {
        "nf": "count-min (depth=4, eNetSTL mode)",
        "n_packets": n_packets,
        "single_core_mpps": round(single.mpps, 3),
        "uniform_curve": curve,
        "zipf_imbalance_at_max_cores": round(zipf_result.imbalance, 4),
        "zipf_aggregate_mpps_at_max_cores": round(zipf_result.aggregate_mpps, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=800)
    parser.add_argument(
        "--out",
        default=str(pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR1.json"),
    )
    args = parser.parse_args(argv)

    names = list(BENCH_EXPERIMENTS)
    auto_jobs = resolve_jobs("auto")
    print(f"benchmarking {len(names)} experiments at {args.packets} packets "
          f"(auto jobs = {auto_jobs}) ...")

    cache_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        serial_s, serial_results = time_run(names, args.packets, 1, None)
        print(f"  serial cold:   {serial_s:7.2f}s")

        cold_cache = ResultCache(cache_root)
        parallel_s, parallel_results = time_run(
            names, args.packets, "auto", cold_cache
        )
        print(f"  parallel cold: {parallel_s:7.2f}s "
              f"({cold_cache.misses} point(s) computed)")

        warm_cache = ResultCache(cache_root)
        warm_s, warm_results = time_run(names, args.packets, "auto", warm_cache)
        print(f"  warm cache:    {warm_s:7.2f}s "
              f"({warm_cache.hits} hit(s), {warm_cache.misses} miss(es))")
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    identical = all(
        serial_results[n].points == parallel_results[n].points == warm_results[n].points
        for n in names
    )

    scaling = multicore_scaling()
    payload = {
        "benchmark": "PR1 multi-core RSS data plane + parallel runner",
        "host": host_metadata(),
        "experiments": names,
        "n_packets": args.packets,
        "wallclock_s": {
            "serial_cold": round(serial_s, 3),
            "parallel_cold_jobs_auto": round(parallel_s, 3),
            "warm_cache_jobs_auto": round(warm_s, 3),
        },
        "speedup": {
            "parallel_cold_vs_serial": round(serial_s / parallel_s, 3),
            "warm_cache_vs_serial": round(serial_s / warm_s, 3),
        },
        "results_bit_identical_across_modes": identical,
        "multicore_scaling": scaling,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    print(f"  warm-cache speedup: {payload['speedup']['warm_cache_vs_serial']}x")
    print(f"  8-core uniform scaling: "
          f"{scaling['uniform_curve'][-1]['speedup']}x, "
          f"zipf imbalance {scaling['zipf_imbalance_at_max_cores']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
