"""Widening precision-ablation benchmark (PR 9's acceptance numbers).

Not a pytest module — run it directly:

    PYTHONPATH=src python benchmarks/bench_widening.py [--quick] [--out PATH]

Measures, and self-asserts, the widening-based loop verification of
PR 9:

1. **Unlock** — the two bundled data-dependent-loop programs
   (``loop_pkt_search``, ``loop_lpm_walk``).  The seed verifier
   (``widen="off"``) must reject both by state explosion; the widening
   verifier must accept both in O(1) abstract states, with the in-loop
   ``safe_mem``/``safe_div`` proofs intact.
2. **Verify-time scaling** — a mask ladder over the same bounded-
   linear-search shape, sized so the seed verifier still accepts by
   per-trip enumeration.  Seed states/time grow linearly with the
   data-dependent trip bound; widened states stay flat, and at the
   largest rung widening must also win wall-clock.  Proof survival
   (the fraction of the seed's elided checks the widened invariant
   still proves) is recorded per rung and must be 1.0 on this family.
3. **Precision ablation** — ``widen="always"`` (every back-edge target
   widened) over the whole bundled corpus: how many accepts survive
   maximal widening, the aggregate proof-survival fraction, and the
   soundness direction — every reject-expected program must stay
   rejected.

Results land in ``BENCH_PR9.json`` next to the repo root; the CI
``verify-smoke`` job runs the ``--quick`` variant and re-checks the
self-assertions.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.analysis.hostmeta import host_metadata
from repro.ebpf.insn import (
    Alu, Exit, Imm, Jmp, JmpIf, Load, Mov, Program,
    R0, R1, R2, R3, R4, R5, R6, R7, R8, R9,
)
from repro.ebpf.progs import bundled_cases, get_case
from repro.ebpf.kfunc_meta import default_registry
from repro.ebpf.verifier import Verifier, VerifierError

#: The previously unverifiable programs this PR unlocks.
UNLOCKED = ("loop_pkt_search", "loop_lpm_walk")


def _search_prog(mask: int) -> Program:
    """The ``loop_pkt_search`` shape with a parametric bound mask —
    small masks keep the seed verifier's per-trip enumeration inside
    the state budget, giving an accept-vs-accept comparison."""
    return Program([
        Load(R2, R1, 0),
        Load(R3, R1, 8),
        Mov(R4, R2),
        Alu("add", R4, Imm(8)),
        JmpIf("gt", R4, R3, 23),
        Load(R7, R2, 0),
        Mov(R8, R7),
        Alu("and", R8, Imm(mask)),
        Mov(R6, Imm(0)),
        JmpIf("ge", R6, R8, 21),
        Mov(R5, R6),
        Alu("lsh", R5, Imm(3)),
        Mov(R4, R2),
        Alu("add", R4, R5),
        Mov(R9, R4),
        Alu("add", R9, Imm(16)),
        JmpIf("gt", R9, R3, 21),
        Load(R0, R4, 8),
        JmpIf("eq", R0, R7, 23),
        Alu("add", R6, Imm(1)),
        Jmp(9),
        Mov(R0, Imm(2)),
        Exit(),
        Mov(R0, Imm(1)),
        Exit(),
    ], name=f"search_{mask:#x}")


def _proofs(vp) -> set:
    return ({("mem", pc) for pc in vp.annotations.safe_mem}
            | {("div", pc) for pc in vp.annotations.safe_div})


def _timed_verify(verifier: Verifier, prog: Program):
    t0 = time.perf_counter()
    try:
        vp = verifier.verify(prog)
    except VerifierError as exc:
        return None, str(exc), (time.perf_counter() - t0) * 1000
    return vp, None, (time.perf_counter() - t0) * 1000


def unlock_suite() -> dict:
    reg = default_registry()
    out = {"programs": {}}
    for name in UNLOCKED:
        prog = get_case(name).prog
        _, err, off_ms = _timed_verify(Verifier(reg, widen="off"), prog)
        assert err is not None and "state limit" in err, (
            f"{name}: seed verifier must reject by state explosion"
        )
        vp, werr, auto_ms = _timed_verify(Verifier(reg), prog)
        assert vp is not None, f"{name}: widening must accept ({werr})"
        st = vp.stats
        assert st.loops_widened == 1 and st.states_explored <= 64, (
            f"{name}: not O(1) states ({st.states_explored})"
        )
        out["programs"][name] = {
            "seed_verdict": "reject (state limit)",
            "seed_ms": round(off_ms, 3),
            "widened_verdict": "accept",
            "widened_ms": round(auto_ms, 3),
            "states": st.states_explored,
            "fixpoint_iters": st.fixpoint_iters,
            "trip_bounds": {
                str(h): inv.trip_bound
                for h, inv in vp.loop_invariants.items()
            },
            "safe_mem": sorted(vp.annotations.safe_mem),
            "safe_div": sorted(vp.annotations.safe_div),
        }
    # The in-loop proofs the issue names: guarded packet load, nonzero
    # divisor — both must survive widening.
    assert 17 in Verifier(reg).verify(
        get_case("loop_pkt_search").prog).annotations.safe_mem
    assert 13 in Verifier(reg).verify(
        get_case("loop_lpm_walk").prog).annotations.safe_div
    return out


def scaling_suite(masks) -> dict:
    reg = default_registry()
    out = {"family": "bounded linear search (bound = pkt word & mask)",
           "rungs": {}}
    prev_seed_states = 0
    for mask in masks:
        prog = _search_prog(mask)
        vp_off, err, off_ms = _timed_verify(Verifier(reg, widen="off"), prog)
        assert vp_off is not None, (
            f"mask {mask:#x}: ladder rung must stay seed-acceptable ({err})"
        )
        vp, _, auto_ms = _timed_verify(Verifier(reg), prog)
        assert vp is not None and vp.stats.loops_widened == 1
        seed_proofs, widened_proofs = _proofs(vp_off), _proofs(vp)
        survival = (len(seed_proofs & widened_proofs) / len(seed_proofs)
                    if seed_proofs else 1.0)
        out["rungs"][f"{mask:#x}"] = {
            "trip_bound": mask,
            "seed_states": vp_off.stats.states_explored,
            "seed_ms": round(off_ms, 3),
            "widened_states": vp.stats.states_explored,
            "widened_ms": round(auto_ms, 3),
            "states_ratio": round(
                vp_off.stats.states_explored / vp.stats.states_explored, 2),
            "time_speedup": round(off_ms / auto_ms, 3),
            "fixpoint_iters": vp.stats.fixpoint_iters,
            "proof_survival": survival,
        }
        assert survival == 1.0, f"mask {mask:#x}: proofs lost to widening"
        assert vp_off.stats.states_explored > prev_seed_states, (
            "seed states must grow with the trip bound"
        )
        prev_seed_states = vp_off.stats.states_explored
    rungs = list(out["rungs"].values())
    assert rungs[-1]["states_ratio"] >= 10, (
        "widening must beat per-trip enumeration by >= 10x states "
        "at the largest rung"
    )
    assert rungs[-1]["time_speedup"] > 1.0, (
        "widening must win wall-clock at the largest rung"
    )
    # O(1) claim: widened states stay flat while the bound grows.
    assert max(r["widened_states"] for r in rungs) <= 2 * min(
        r["widened_states"] for r in rungs)
    out["verify_time_speedup_at_largest"] = rungs[-1]["time_speedup"]
    out["states_ratio_at_largest"] = rungs[-1]["states_ratio"]
    return out


def ablation_suite() -> dict:
    """``widen="always"``: maximal widening over the bundled corpus."""
    reg = default_registry()
    kept = lost = 0
    survived = total = 0
    per_program = {}
    for case in bundled_cases():
        base, base_err, _ = _timed_verify(Verifier(reg), case.prog)
        vp, err, _ = _timed_verify(Verifier(reg, widen="always"), case.prog)
        if base is None:
            # Soundness direction: a program the precise verifier
            # rejects must never become acceptable by *losing*
            # precision.
            assert vp is None, (
                f"{case.name}: widen=always accepted a rejected program"
            )
            per_program[case.name] = {"verdict": "reject (both)"}
            continue
        if vp is None:
            lost += 1
            per_program[case.name] = {
                "verdict": "precision lost (reject under widen=always)",
                "error": err,
            }
            continue
        kept += 1
        base_proofs, wide_proofs = _proofs(base), _proofs(vp)
        survived += len(base_proofs & wide_proofs)
        total += len(base_proofs)
        per_program[case.name] = {
            "verdict": "accept",
            "proof_survival": (
                round(len(base_proofs & wide_proofs) / len(base_proofs), 3)
                if base_proofs else 1.0),
            "states": vp.stats.states_explored,
            "loops_widened": vp.stats.loops_widened,
        }
    out = {
        "mode": "widen=always (every back-edge target widened)",
        "accepts_kept": kept,
        "accepts_lost": lost,
        "proof_survival_overall": round(survived / total, 3) if total else 1.0,
        "programs": per_program,
    }
    assert kept >= lost, "maximal widening lost most of the corpus"
    assert out["proof_survival_overall"] >= 0.5
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run (smaller mask ladder)",
    )
    parser.add_argument(
        "--out",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR9.json"
        ),
    )
    args = parser.parse_args(argv)
    # Every rung must exceed WIDEN_AFTER_TRIPS (128 trips) or auto
    # mode just enumerates the loop precisely and nothing is widened.
    masks = (0xFF, 0x1FF, 0x3FF) if args.quick else (0xFF, 0x3FF, 0x7FF)

    print("unlock suite (seed-rejected data-dependent loops) ...")
    unlock = unlock_suite()
    for name, d in unlock["programs"].items():
        print(f"  {name:>16}: seed {d['seed_verdict']} in {d['seed_ms']:.1f}ms"
              f" -> widened accept, {d['states']} states, "
              f"{d['fixpoint_iters']} fixpoint iters, "
              f"bounds {d['trip_bounds']}")

    print(f"verify-time scaling suite (masks {[hex(m) for m in masks]}) ...")
    scaling = scaling_suite(masks)
    for rung, d in scaling["rungs"].items():
        print(f"  mask {rung:>6}: seed {d['seed_states']:>6} states / "
              f"{d['seed_ms']:.1f}ms -> widened {d['widened_states']} states"
              f" / {d['widened_ms']:.1f}ms "
              f"({d['states_ratio']}x states, {d['time_speedup']}x time, "
              f"survival {d['proof_survival']:.2f})")

    print("precision ablation (widen=always over bundled corpus) ...")
    ablation = ablation_suite()
    print(f"  {ablation['accepts_kept']} accepts kept, "
          f"{ablation['accepts_lost']} lost, proof survival "
          f"{ablation['proof_survival_overall']}")

    payload = {
        "benchmark": "PR9 widening-based loop verification",
        "host": host_metadata(),
        "quick": args.quick,
        "unlocked": unlock,
        "verify_time_scaling": scaling,
        "precision_ablation": ablation,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
