"""Table 2: per-component microbenchmarks (§6.4)."""

import repro.analysis as a


def test_table2_components(run_once):
    results = run_once(a.table2_results)
    print()
    print(a.render_components(results))
    imps = a.table2_improvements()
    # Paper: single-component improvements span 52.0% .. 513%.
    assert all(imp >= 0.50 for imp in imps.values()), imps
    assert max(imps.values()) >= 3.0
    assert max(imps.values()) <= 5.5
    # The biggest wins are the random pools (helper-call elimination).
    assert imps["random_pool"] == max(imps.values())
