"""Table 1: the 35-work survey + this repo's measured degradations."""

import repro.analysis as a


def test_table1_survey(run_once):
    measured = run_once(a.measured_degradations, n_packets=800)
    print()
    print(a.render_table1(measured))
    summary = a.survey_summary()
    assert (summary["total"], summary["infeasible"],
            summary["degraded"], summary["ok"]) == (35, 3, 28, 4)
    # Paper's global degradation envelope: 14.8% .. 49.2%.
    assert all(0.10 <= d <= 0.55 for d in measured.values())
    assert max(measured.values()) >= 0.35
    assert min(measured.values()) <= 0.20
