"""Fig. 4: end-to-end latency at low load (1 kpps), heavy configs (§6.3)."""

import repro.analysis as a
from repro.ebpf.cost_model import ExecMode


def test_fig4_latency(run_once):
    points = run_once(a.fig4_fig5_latency, n_packets=300)
    print()
    print(a.render_latency(points, "Fig. 4"))
    by_nf = {}
    for p in points:
        by_nf.setdefault(p.nf, {})[p.mode] = p
    assert len(by_nf) == 11
    for nf, modes in by_nf.items():
        enet = modes[ExecMode.ENETSTL]
        # eNetSTL does not significantly increase latency vs eBPF...
        if ExecMode.PURE_EBPF in modes:
            ebpf = modes[ExecMode.PURE_EBPF]
            assert enet.avg_latency_us <= ebpf.avg_latency_us + 0.05, nf
        # ...and stays within a hair of the kernel build.
        kern = modes[ExecMode.KERNEL]
        assert enet.avg_latency_us <= kern.avg_latency_us * 1.05, nf
        # Low-load latency is wire-dominated (tens of microseconds).
        assert 20.0 <= enet.avg_latency_us <= 60.0, nf
