"""Ablation: lazy vs eager safety checking (§4.2, §4.1).

Two flavors of the same design claim — safety work moved off the hot
path buys back real cycles:

- the memory wrapper: validating every ``get_next`` against a table of
  live relationships (eager) costs measurably more than deferring all
  work to free time (lazy), because traversals vastly outnumber frees;
- the verifier: runtime checks the range-aware verifier discharged
  statically (packet bounds, stack bounds, divisor != 0) are *elided*
  from the interpreter's hot path, with bit-identical NF output.
"""

from repro.ebpf.cost_model import ExecMode
from repro.ebpf.progs import get_case
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.irnf import IrNf
from repro.net.xdp import XdpPipeline
from repro.nfs.kv_skiplist import OP_LOOKUP, OP_UPDATE_DELETE, SkipListKV

MASK64 = (1 << 64) - 1


def _run(checking: str, op_mix: str, n_packets: int = 1200) -> float:
    fg = FlowGenerator(n_flows=4096, seed=21)
    rt = BpfRuntime(mode=ExecMode.ENETSTL, seed=21)
    nf = SkipListKV(rt, op_mix=op_mix, checking=checking)
    nf.preload(f.key_int & MASK64 for f in fg.flows)
    rt.cycles.reset()
    return XdpPipeline(nf).run(fg.trace(n_packets)).cycles_per_packet


def test_lazy_vs_eager_checking(run_once):
    def experiment():
        return {
            op_mix: {checking: _run(checking, op_mix) for checking in ("lazy", "eager")}
            for op_mix in (OP_LOOKUP, OP_UPDATE_DELETE)
        }

    results = run_once(experiment)
    print()
    print("== Ablation: lazy vs eager safety checking (skip-list KV) ==")
    for op_mix, data in results.items():
        overhead = data["eager"] / data["lazy"] - 1
        print(
            f"  {op_mix:14s}: lazy {data['lazy']:7.1f} cyc/pkt, "
            f"eager {data['eager']:7.1f} cyc/pkt -> eager costs +{overhead:.1%}"
        )
        # Eager checking must add real per-traversal overhead...
        assert overhead > 0.08
        # ...but not change functional behavior (same cost order).
        assert data["eager"] < 3 * data["lazy"]


def _run_ir(elide_checks: bool, n_packets: int = 600):
    rt = BpfRuntime(mode=ExecMode.ENETSTL, seed=7)
    nf = IrNf(rt, get_case("nf_classifier").prog, elide_checks=elide_checks, seed=7)
    fg = FlowGenerator(n_flows=512, seed=7)
    result = XdpPipeline(nf).run(fg.trace(n_packets))
    return result, nf


def test_static_proof_elision(run_once):
    """Verifier-proven checks elided at runtime: fewer cycles, same bits."""

    def experiment():
        checked_res, checked_nf = _run_ir(elide_checks=False)
        elided_res, elided_nf = _run_ir(elide_checks=True)
        return {
            "checked": (checked_res, checked_nf),
            "elided": (elided_res, elided_nf),
        }

    results = run_once(experiment)
    checked_res, checked_nf = results["checked"]
    elided_res, elided_nf = results["elided"]

    print()
    print("== Ablation: runtime checks vs verifier-elided (nf_classifier) ==")
    for label, (res, nf) in results.items():
        print(
            f"  {label:7s}: {res.cycles_per_packet:7.1f} cyc/pkt, "
            f"{nf.stats.checks_performed} checks performed, "
            f"{nf.stats.checks_elided} elided"
        )

    # Same program, same seed: verdicts and raw r0 values are
    # bit-identical — elision changes cost, never behavior.
    assert checked_nf.returns == elided_nf.returns
    assert checked_res.actions == elided_res.actions
    # Static proofs bought back the entire per-check cycle bill.
    assert elided_res.total_cycles < checked_res.total_cycles
    assert checked_nf.stats.check_cycles == (
        checked_res.total_cycles - elided_res.total_cycles
    )
    # Every hot-path check in this NF is statically discharged.
    assert elided_nf.stats.checks_performed == 0
    assert elided_nf.stats.checks_elided == checked_nf.stats.checks_performed > 0
