"""Ablation: lazy vs eager safety checking in the memory wrapper (§4.2).

The design claim: validating every ``get_next`` against a table of live
relationships (eager) costs measurably more than deferring all work to
free time (lazy), because traversals vastly outnumber frees in NF
workloads.
"""

from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.xdp import XdpPipeline
from repro.nfs.kv_skiplist import OP_LOOKUP, OP_UPDATE_DELETE, SkipListKV

MASK64 = (1 << 64) - 1


def _run(checking: str, op_mix: str, n_packets: int = 1200) -> float:
    fg = FlowGenerator(n_flows=4096, seed=21)
    rt = BpfRuntime(mode=ExecMode.ENETSTL, seed=21)
    nf = SkipListKV(rt, op_mix=op_mix, checking=checking)
    nf.preload(f.key_int & MASK64 for f in fg.flows)
    rt.cycles.reset()
    return XdpPipeline(nf).run(fg.trace(n_packets)).cycles_per_packet


def test_lazy_vs_eager_checking(run_once):
    def experiment():
        return {
            op_mix: {checking: _run(checking, op_mix) for checking in ("lazy", "eager")}
            for op_mix in (OP_LOOKUP, OP_UPDATE_DELETE)
        }

    results = run_once(experiment)
    print()
    print("== Ablation: lazy vs eager safety checking (skip-list KV) ==")
    for op_mix, data in results.items():
        overhead = data["eager"] / data["lazy"] - 1
        print(
            f"  {op_mix:14s}: lazy {data['lazy']:7.1f} cyc/pkt, "
            f"eager {data['eager']:7.1f} cyc/pkt -> eager costs +{overhead:.1%}"
        )
        # Eager checking must add real per-traversal overhead...
        assert overhead > 0.08
        # ...but not change functional behavior (same cost order).
        assert data["eager"] < 3 * data["lazy"]
