"""Steering + streaming + NUMA benchmark (PR 2's acceptance numbers).

Not a pytest module — run it directly:

    PYTHONPATH=src python benchmarks/bench_steering.py [--quick] [--out PATH]

Measures, and self-asserts, the PR 2 data plane:

1. **Steering** — one 8-core Zipf(1.1) replay per policy
   (``rss``/``rekey``/``ntuple``) over the identical packet stream:
   explicit ntuple pinning must reach imbalance <= 1.3 while every
   policy charges the *same* total cycles as the PR 1 accounting
   (the plain-RSS materialize-then-shard path, recomputed here).
   The PR 1 trace (2048 flows, BENCH_PR1.json's 1.87 imbalance) is
   replayed too: its top flow alone carries >1/8 of the packets, so
   flow affinity caps any policy at the recorded floor.
2. **Streaming** — a generator-fed replay must be bit-identical to the
   materialized replay of the same trace.
3. **NUMA** — the same fleet on 1 vs 2 sockets: cross-node packet
   penalties lower aggregate PPS without touching NF cycle totals.

Results land in ``BENCH_PR2.json`` next to the repo root; the CI smoke
step re-checks the JSON's schema and the imbalance ordering.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.analysis.hostmeta import host_metadata
from repro.ebpf.cost_model import ExecMode, NumaTopology
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.multicore import RssDispatcher, shard_trace
from repro.net.xdp import XdpPipeline
from repro.nfs import CountMinNF

N_CORES = 8
ZIPF_S = 1.1
POLICIES = ("rss", "rekey", "ntuple")

#: Headline trace: 8192 flows — Zipf(1.1)'s top flow stays under 1/8 of
#: the packets, so sub-1.3 imbalance is reachable under flow affinity.
HEADLINE_FLOWS = 8192
#: PR 1's trace (BENCH_PR1.json): 2048 flows, top flow ~17% of packets
#: — the flow-affinity floor itself sits above 1.3 at 8 cores.
PR1_FLOWS = 2048


def factory(core: int) -> CountMinNF:
    return CountMinNF(BpfRuntime(mode=ExecMode.ENETSTL, seed=core), depth=4)


def zipf_stream(n_flows: int, n_packets: int):
    fg = FlowGenerator(n_flows=n_flows, seed=5, distribution="zipf", zipf_s=ZIPF_S)
    return fg.iter_trace(n_packets)


def pr1_total_cycles(n_flows: int, n_packets: int) -> int:
    """The PR 1 accounting: materialize, shard by RSS, run_batch per core."""
    trace = list(zipf_stream(n_flows, n_packets))
    total = 0
    for core, queue in enumerate(shard_trace(trace, N_CORES)):
        total += XdpPipeline(factory(core)).run_batch(queue).total_cycles
    return total


def steering_suite(n_flows: int, n_packets: int):
    baseline_cycles = pr1_total_cycles(n_flows, n_packets)
    out = {
        "n_flows": n_flows,
        "n_packets": n_packets,
        "zipf_s": ZIPF_S,
        "n_cores": N_CORES,
        "pr1_total_cycles": baseline_cycles,
        "policies": {},
    }
    for policy in POLICIES:
        dispatcher = RssDispatcher(factory, n_cores=N_CORES, steering=policy)
        result = dispatcher.run(zipf_stream(n_flows, n_packets))
        assert result.total_cycles == baseline_cycles, (
            f"{policy}: steering changed cycle accounting "
            f"({result.total_cycles} != {baseline_cycles})"
        )
        out["policies"][policy] = {
            "imbalance": round(result.imbalance, 4),
            "aggregate_mpps": round(result.aggregate_mpps, 3),
            "total_cycles": result.total_cycles,
            "steering": dispatcher.steering.describe(),
        }
    rss = out["policies"]["rss"]
    for policy in ("rekey", "ntuple"):
        assert out["policies"][policy]["imbalance"] <= rss["imbalance"], (
            f"{policy} must not be worse than plain RSS"
        )
    return out


def streaming_suite(n_flows: int, n_packets: int):
    materialized_trace = list(zipf_stream(n_flows, n_packets))
    materialized = RssDispatcher(factory, n_cores=N_CORES).run(materialized_trace)
    streamed = RssDispatcher(factory, n_cores=N_CORES).run(
        zipf_stream(n_flows, n_packets)
    )
    identical = (
        streamed.per_core_cycles == materialized.per_core_cycles
        and streamed.actions == materialized.actions
        and streamed.n_packets == materialized.n_packets
    )
    assert identical, "streamed replay diverged from materialized replay"
    return {
        "n_packets": n_packets,
        "bit_identical_to_materialized": identical,
        "peak_resident_bound": "n_cores x batch_size (see tests/net/test_streaming.py)",
    }


def numa_suite(n_flows: int, n_packets: int):
    out = {}
    for n_nodes in (1, 2):
        numa = NumaTopology(n_nodes=n_nodes) if n_nodes > 1 else None
        result = RssDispatcher(
            factory, n_cores=N_CORES, steering="ntuple", numa=numa
        ).run(zipf_stream(n_flows, n_packets))
        out[f"{n_nodes}_node"] = {
            "aggregate_mpps": round(result.aggregate_mpps, 3),
            "imbalance": round(result.imbalance, 4),
            "total_cycles": result.total_cycles,
            "numa_cycles": result.total_numa_cycles,
        }
    assert (
        out["2_node"]["total_cycles"] == out["1_node"]["total_cycles"]
    ), "NUMA penalty must not leak into NF cycle accounting"
    assert (
        out["2_node"]["aggregate_mpps"] <= out["1_node"]["aggregate_mpps"]
    ), "cross-node penalty must not raise throughput"
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run (fewer packets; same assertions)",
    )
    parser.add_argument(
        "--out",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR2.json"
        ),
    )
    args = parser.parse_args(argv)
    n_packets = 6000 if args.quick else 16000

    print(f"steering suite ({HEADLINE_FLOWS} flows, {n_packets} packets) ...")
    headline = steering_suite(HEADLINE_FLOWS, n_packets)
    for policy, d in headline["policies"].items():
        print(f"  {policy:>7}: imbalance {d['imbalance']:.3f}, "
              f"{d['aggregate_mpps']:.2f} Mpps")
    if not args.quick:
        # The <= 1.3 acceptance bar holds at full size (the quick run's
        # shorter trace fits the policy on a thinner sample).
        assert headline["policies"]["ntuple"]["imbalance"] <= 1.3, (
            "explicit steering must reach <= 1.3 imbalance on the "
            "headline Zipf trace"
        )

    print(f"PR1-trace suite ({PR1_FLOWS} flows) ...")
    pr1_trace = steering_suite(PR1_FLOWS, n_packets)

    print("streaming suite ...")
    streaming = streaming_suite(HEADLINE_FLOWS, min(n_packets, 8000))

    print("numa suite ...")
    numa = numa_suite(HEADLINE_FLOWS, min(n_packets, 8000))

    payload = {
        "benchmark": "PR2 steering-aware multi-core dispatch + streaming pipeline",
        "host": host_metadata(),
        "quick": args.quick,
        "steering": headline,
        "steering_pr1_trace": pr1_trace,
        "streaming": streaming,
        "numa": numa,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    rss = headline["policies"]["rss"]["imbalance"]
    ntuple = headline["policies"]["ntuple"]["imbalance"]
    print(f"  zipf imbalance: rss {rss} -> ntuple {ntuple} "
          f"(cycles unchanged: {headline['pr1_total_cycles']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
