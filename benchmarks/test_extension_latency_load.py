"""Extension: latency vs offered load (beyond Fig. 4's 1 kpps point).

The paper measures latency only at low load; with the M/D/1 queueing
extension we can show where the throughput improvements *become*
latency improvements: at offered rates the pure-eBPF build cannot
sustain, the eNetSTL build still serves with bounded delay.
"""

from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.xdp import XdpPipeline
from repro.nfs import CountMinNF


def test_latency_under_load(run_once):
    def experiment():
        trace = FlowGenerator(256, seed=41).trace(1500)
        results = {}
        for mode in (ExecMode.PURE_EBPF, ExecMode.ENETSTL):
            nf = CountMinNF(BpfRuntime(mode=mode, seed=41), depth=8)
            results[mode] = XdpPipeline(nf).run(trace)
        ebpf, enet = results[ExecMode.PURE_EBPF], results[ExecMode.ENETSTL]
        loads = [0.25e6, 1e6, 2e6, 2.9e6, 4e6]
        rows = []
        for offered in loads:
            rows.append(
                (
                    offered,
                    ebpf.latency_at_load_us(offered),
                    enet.latency_at_load_us(offered),
                )
            )
        return ebpf.pps, enet.pps, rows

    ebpf_pps, enet_pps, rows = run_once(experiment)
    print()
    print("== Extension: latency vs offered load (count-min, k=8) ==")
    print(f"  capacity: eBPF {ebpf_pps / 1e6:.2f} Mpps, "
          f"eNetSTL {enet_pps / 1e6:.2f} Mpps")
    for offered, lat_ebpf, lat_enet in rows:
        def fmt(v):
            return f"{v:8.1f} us" if v != float("inf") else " saturated"

        print(f"  offered {offered / 1e6:4.2f} Mpps: "
              f"eBPF {fmt(lat_ebpf)} | eNetSTL {fmt(lat_enet)}")

    # At low load both are wire-dominated and near-equal...
    assert abs(rows[0][1] - rows[0][2]) < 1.0
    # ...but past eBPF's capacity only eNetSTL still serves.
    past_ebpf = [r for r in rows if r[0] > ebpf_pps]
    assert past_ebpf, "load sweep should cross eBPF capacity"
    for _, lat_ebpf, lat_enet in past_ebpf:
        if lat_enet != float("inf"):
            assert lat_ebpf == float("inf")
