"""Whole-pipeline fusion benchmark (PR 6's acceptance numbers).

Not a pytest module — run it directly:

    PYTHONPATH=src python benchmarks/bench_fusion.py [--quick] [--out PATH]

Measures, and self-asserts, the PR 6 execution stack: NF *chains*
(classifier -> count-min -> Maglev) run as

1. ``interp`` — the interpreted chain, one fresh VM per stage per
   packet (the PR 1–4 data plane),
2. ``jit``    — PR 5's per-NF JIT, per-stage compiled closures glued
   together by interpreted chain code,
3. ``fused``  — PR 6's chain fuser (:mod:`repro.ebpf.fuse`): the whole
   chain *and* the batch loop in one generated closure with early-exit
   codegen, burned-in constants, and inlined kfuncs,

single-core (``IrChainNf.process_batch``) and at 4 cores through
:class:`RssDispatcher`.  Every measured configuration carries a
``bit_identical: true`` witness — identical verdict sequences, cycle
totals, error counters, and accounting versus the interpreted chain —
both clean and under a :mod:`repro.faults` chaos schedule.

Results land in ``BENCH_PR6.json`` next to the repo root; the CI
``fusion-smoke`` job runs the ``--quick`` variant and re-checks the
self-assertions.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.analysis.hostmeta import host_metadata
from repro.ebpf import fuse
from repro.ebpf.progs import get_case, runnable_registry
from repro.ebpf.runtime import BpfRuntime
from repro.ebpf.verifier import Verifier
from repro.faults import FaultPlan
from repro.net.flowgen import FlowGenerator
from repro.net.irnf import IrChainNf
from repro.net.multicore import RssDispatcher, chain_nf_factory

#: The measured chain configurations (the 4-NF chain re-enters the
#: count-min stage — sketches are the NF most often stacked).
CHAINS = {
    "1nf": ("nf_classifier",),
    "2nf": ("nf_classifier", "nf_cm_sketch"),
    "3nf": ("nf_classifier", "nf_cm_sketch", "nf_maglev_pick"),
    "4nf": ("nf_classifier", "nf_cm_sketch", "nf_cm_sketch",
            "nf_maglev_pick"),
}

BACKENDS = ("interp", "jit", "fused")

#: Timing repetitions per configuration (fresh state each; min wins).
REPS = 3

N_CORES = 4

#: The chaos schedule every configuration must also stay bit-identical
#: under (packet faults + helper/map errors; seed-pinned).
CHAOS = FaultPlan(
    seed=77,
    drop_rate=0.02,
    corrupt_rate=0.03,
    truncate_rate=0.02,
    dup_rate=0.02,
    helper_rate=0.03,
    map_full_rate=0.03,
)


def _progs(combo):
    return [get_case(name).prog for name in combo]


def _trace(n_packets: int):
    fg = FlowGenerator(n_flows=64, seed=3)
    return list(fg.trace(n_packets))


# -- single-core ------------------------------------------------------------


def _timed_single(combo, backend, trace):
    """Best-of-REPS wall-clock for one chain backend: (pps, witness).

    Each repetition gets a fresh runtime + registry + NF so kfunc state
    (sketch counters, PRNG stream) starts identical; the witness is the
    same every rep and only the clock varies.
    """
    best = float("inf")
    witness = None
    for _ in range(REPS):
        rt = BpfRuntime(seed=1)
        nf = IrChainNf(rt, _progs(combo), registry=runnable_registry(1),
                       backend=backend)
        t0 = time.perf_counter()
        nf.process_batch(trace)
        dt = time.perf_counter() - t0
        best = min(best, dt)
        rep_witness = (tuple(nf.returns), rt.cycles.total)
        assert witness is None or witness == rep_witness, (
            f"{combo}/{backend}: repetitions diverged"
        )
        witness = rep_witness
    return len(trace) / best, witness


# -- multicore --------------------------------------------------------------


def _dispatcher_witness(result, dispatcher):
    return (
        result.accounting(),
        tuple(sorted(result.errors.items())),
        result.total_cycles,
        tuple(sorted((c.name, v) for c, v in result.by_category.items())),
        tuple(tuple(nf.returns) for nf in dispatcher.nfs),
    )


def _timed_multicore(combo, backend, trace, faults=None):
    best = float("inf")
    witness = None
    for _ in range(REPS):
        disp = RssDispatcher(
            chain_nf_factory(_progs(combo), backend=backend),
            n_cores=N_CORES,
            faults=faults,
        )
        t0 = time.perf_counter()
        result = disp.run(trace)
        dt = time.perf_counter() - t0
        best = min(best, dt)
        rep_witness = _dispatcher_witness(result, disp)
        assert witness is None or witness == rep_witness, (
            f"{combo}/{backend}/{N_CORES}c: repetitions diverged"
        )
        witness = rep_witness
    return len(trace) / best, witness


# -- suites -----------------------------------------------------------------


def fusion_suite(n_packets: int, bar_vs_jit: float,
                 bar_vs_interp: float) -> dict:
    trace = _trace(n_packets)
    out = {
        "n_packets": n_packets,
        "n_cores": N_CORES,
        "min_fused_over_jit": bar_vs_jit,
        "min_fused_over_interp": bar_vs_interp,
        "chains": {},
    }
    for label, combo in CHAINS.items():
        reg = runnable_registry(0)
        verifier = Verifier(reg)
        verified = [verifier.verify(p) for p in _progs(combo)]
        t0 = time.perf_counter()
        fused = fuse.fuse_chain(reg, verified)
        compile_ms = (time.perf_counter() - t0) * 1000

        entry = {
            "chain": list(combo),
            "compile_ms": round(compile_ms, 3),
            "fused_nodes": fused.n_nodes,
            "inlined_kfuncs": fused.inlined_kfuncs,
            "single_core": {},
            "multicore": {},
        }

        # Single-core: all three backends, witness-checked against interp.
        pps, witnesses = {}, {}
        for backend in BACKENDS:
            pps[backend], witnesses[backend] = _timed_single(
                combo, backend, trace)
        assert witnesses["jit"] == witnesses["interp"], (
            f"{label}: jit chain diverged from interp")
        assert witnesses["fused"] == witnesses["interp"], (
            f"{label}: fused chain diverged from interp")
        entry["single_core"] = {
            "interp_pps": round(pps["interp"]),
            "jit_pps": round(pps["jit"]),
            "fused_pps": round(pps["fused"]),
            "fused_over_jit": round(pps["fused"] / pps["jit"], 3),
            "fused_over_interp": round(pps["fused"] / pps["interp"], 3),
            "bit_identical": True,
            "cycle_total": witnesses["interp"][1],
        }

        # Multicore: clean timing plus an untimed chaos parity leg.
        mpps, mwit = {}, {}
        for backend in BACKENDS:
            mpps[backend], mwit[backend] = _timed_multicore(
                combo, backend, trace)
        assert mwit["jit"] == mwit["interp"], (
            f"{label}: {N_CORES}-core jit diverged from interp")
        assert mwit["fused"] == mwit["interp"], (
            f"{label}: {N_CORES}-core fused diverged from interp")
        _, chaos_i = _timed_multicore(combo, "interp", trace, faults=CHAOS)
        _, chaos_f = _timed_multicore(combo, "fused", trace, faults=CHAOS)
        assert chaos_f == chaos_i, (
            f"{label}: fused diverged from interp under chaos")
        entry["multicore"] = {
            "interp_pps": round(mpps["interp"]),
            "jit_pps": round(mpps["jit"]),
            "fused_pps": round(mpps["fused"]),
            "fused_over_jit": round(mpps["fused"] / mpps["jit"], 3),
            "fused_over_interp": round(mpps["fused"] / mpps["interp"], 3),
            "bit_identical": True,
            "bit_identical_chaos": True,
        }
        out["chains"][label] = entry

    # Acceptance bars are pinned on the 3-NF chain.
    bar = out["chains"]["3nf"]["single_core"]
    assert bar["fused_over_jit"] >= bar_vs_jit, (
        f"3nf: fused {bar['fused_over_jit']}x over per-NF JIT is below "
        f"the {bar_vs_jit}x acceptance bar"
    )
    assert bar["fused_over_interp"] >= bar_vs_interp, (
        f"3nf: fused {bar['fused_over_interp']}x over interp is below "
        f"the {bar_vs_interp}x acceptance bar"
    )
    return out


def cache_suite() -> dict:
    """Fused closures are cached per (registry, chain, elide, costs):
    building the same chain twice must hit, not recompile."""
    reg = runnable_registry(0)
    verifier = Verifier(reg)
    verified = [verifier.verify(p) for p in _progs(CHAINS["3nf"])]
    before = fuse.cache_info()
    first = fuse.fused_for(reg, verified)
    again = fuse.fused_for(reg, verified)
    after = fuse.cache_info()
    assert first is again, "fused cache returned a recompiled closure"
    assert after["hits"] > before["hits"], "fused cache recorded no hit"
    return {"before": before, "after": after, "hit_confirmed": True}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run (fewer packets; relaxed speedup bars to "
             "absorb shared-runner timing noise)",
    )
    parser.add_argument("--packets", type=int, default=None)
    parser.add_argument(
        "--out",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR6.json"
        ),
    )
    args = parser.parse_args(argv)
    n_packets = args.packets or (1200 if args.quick else 6000)
    bar_vs_jit = 1.2 if args.quick else 1.5
    bar_vs_interp = 3.0 if args.quick else 4.0

    print(f"fusion suite ({n_packets} packets x {len(CHAINS)} chains x "
          f"{len(BACKENDS)} backends, single-core + {N_CORES} cores, "
          f"best of {REPS}) ...")
    fusion = fusion_suite(n_packets, bar_vs_jit, bar_vs_interp)
    for label, d in fusion["chains"].items():
        s, m = d["single_core"], d["multicore"]
        print(f"  {label}: 1-core interp {s['interp_pps']:>7} -> "
              f"jit {s['jit_pps']:>7} -> fused {s['fused_pps']:>7} pps "
              f"({s['fused_over_jit']:.2f}x jit, "
              f"{s['fused_over_interp']:.2f}x interp)")
        print(f"       {N_CORES}-core interp {m['interp_pps']:>7} -> "
              f"jit {m['jit_pps']:>7} -> fused {m['fused_pps']:>7} pps "
              f"(chaos parity OK)")

    print("fused-cache suite ...")
    caches = cache_suite()

    payload = {
        "benchmark": "PR6 whole-pipeline fusion (chain + batch loop "
                     "in one closure)",
        "host": host_metadata(),
        "quick": args.quick,
        "fusion": fusion,
        "caches": caches,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    bar = fusion["chains"]["3nf"]["single_core"]
    print(f"  3-NF chain: fused {bar['fused_over_jit']}x over per-NF JIT "
          f"(bar: {bar_vs_jit}x), {bar['fused_over_interp']}x over interp "
          f"(bar: {bar_vs_interp}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
