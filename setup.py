"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 517 editable builds (which need ``bdist_wheel``) fail; this shim
lets ``pip install -e .`` take the legacy ``setup.py develop`` path.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
