#!/usr/bin/env python3
"""Packet scheduling: Carousel pacing and Eiffel priorities (case study 3).

Two queuing NFs built on eNetSTL's data structures:

- a Carousel-style two-level timing wheel that paces each flow by its
  transmission timestamp (list-buckets under the hood),
- an Eiffel cFFS priority scheduler (hierarchical bitmaps + FFS).

Shows functional behavior (pacing delays, strict priority order) and
the eBPF-vs-eNetSTL throughput difference of Fig. 3(f)/(h).

Run:  python examples/packet_scheduler.py
"""

from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.xdp import XdpPipeline
from repro.nfs import EiffelNF, TimeWheelNF


def carousel_demo() -> None:
    print("Carousel time wheel: pacing 20k packets at 1 Mpps ingress")
    flows = FlowGenerator(n_flows=512, seed=11)
    trace = flows.trace(20_000, inter_arrival_ns=1000)
    for mode in (ExecMode.PURE_EBPF, ExecMode.ENETSTL):
        rt = BpfRuntime(mode=mode, seed=11)
        wheel = TimeWheelNF(rt, tick_ns=1000, delay_range_ns=100_000)
        result = XdpPipeline(wheel).run(trace)
        print(
            f"  {mode.label:8s}: {result.mpps:6.2f} Mpps | "
            f"enqueued {wheel.enqueued}, transmitted {wheel.dequeued}, "
            f"still pacing {wheel.pending}"
        )


def eiffel_demo() -> None:
    print("\nEiffel cFFS: strict-priority scheduling, 64^3 priority levels")
    flows = FlowGenerator(n_flows=512, seed=12)
    trace = flows.trace(20_000)
    for mode in (ExecMode.PURE_EBPF, ExecMode.ENETSTL):
        rt = BpfRuntime(mode=mode, seed=12)
        sched = EiffelNF(rt, levels=3)
        result = XdpPipeline(sched).run(trace)
        print(
            f"  {mode.label:8s}: {result.mpps:6.2f} Mpps | "
            f"{sched.dequeued} packets scheduled"
        )

    # Priority semantics on the underlying queue, directly:
    from repro.datastructs.cffs import CFFSQueue

    q = CFFSQueue(levels=2)
    for prio, name in [(900, "bulk"), (3, "voice"), (40, "video")]:
        q.enqueue(prio, name)
    order = [q.dequeue_min()[1] for _ in range(3)]
    print(f"  dequeue order by priority: {order}")


def main() -> None:
    carousel_demo()
    eiffel_demo()


if __name__ == "__main__":
    main()
