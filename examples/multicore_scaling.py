#!/usr/bin/env python3
"""Multi-core RSS scaling: shard one trace across simulated cores.

The paper reports single-core saturation throughput; this example shows
what the same NF does when the NIC's receive-side scaling spreads
traffic across 1..8 cores, each running its own per-CPU NF instance:

- near-linear aggregate PPS on uniform traffic,
- a load-imbalance penalty on Zipf-skewed traffic (heavy flows pin to
  single queues),
- per-CPU count-min state merged back into one coherent sketch.

Run:  python examples/multicore_scaling.py
"""

from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.multicore import RssDispatcher, merged_countmin_estimate
from repro.net.xdp import XdpPipeline
from repro.nfs import CountMinNF


def factory(core: int) -> CountMinNF:
    """One private runtime + sketch per core (per-CPU eBPF semantics)."""
    return CountMinNF(BpfRuntime(mode=ExecMode.ENETSTL, seed=core), depth=4)


def main() -> None:
    n_packets = 16_000
    uniform = FlowGenerator(n_flows=2048, seed=5).trace(n_packets)
    zipf = FlowGenerator(n_flows=2048, seed=5, distribution="zipf").trace(n_packets)

    single = XdpPipeline(factory(0)).run(uniform)
    print(f"Count-min NF, single core: {single.mpps:6.2f} Mpps\n")

    print("RSS scaling over a uniform trace:")
    print("  cores  aggregate Mpps  speedup  imbalance")
    for n_cores in (1, 2, 4, 8):
        result = RssDispatcher(factory, n_cores=n_cores).run(uniform)
        print(
            f"  {n_cores:5d}  {result.aggregate_mpps:14.2f}  "
            f"{result.speedup_over(single):6.2f}x  {result.imbalance:9.3f}"
        )

    zipf_result = RssDispatcher(factory, n_cores=8).run(zipf)
    print(
        f"\nZipf trace at 8 cores: {zipf_result.aggregate_mpps:.2f} Mpps "
        f"aggregate, imbalance {zipf_result.imbalance:.2f} "
        f"(heavy flows pin to single queues)"
    )
    print(
        f"  lossless up to {zipf_result.max_lossless_pps / 1e6:.2f} Mpps "
        f"offered aggregate rate"
    )

    # Per-CPU sketches merge back into one coherent estimate.
    disp = RssDispatcher(factory, n_cores=8)
    disp.run(zipf)
    ref = factory(99)
    XdpPipeline(ref).run(zipf)
    probe = max(
        (f for f in FlowGenerator(n_flows=2048, seed=5).flows[:64]),
        key=lambda f: ref.true_free_estimate(f.key_int),
    )
    merged = merged_countmin_estimate(disp.nfs, probe.key_int)
    print(
        f"\nHeaviest probed flow: merged 8-core estimate {merged} packets, "
        f"single-core estimate {ref.true_free_estimate(probe.key_int)} "
        f"(identical by construction)"
    )


if __name__ == "__main__":
    main()
