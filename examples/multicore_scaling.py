#!/usr/bin/env python3
"""Multi-core RSS scaling: shard one trace across simulated cores.

The paper reports single-core saturation throughput; this example shows
what the same NF does when the NIC's receive-side scaling spreads
traffic across 1..8 cores, each running its own per-CPU NF instance:

- near-linear aggregate PPS on uniform traffic,
- a load-imbalance penalty on Zipf-skewed traffic (heavy flows pin to
  single queues),
- steering policies (RSS key re-search, ntuple heavy-hitter pinning)
  clawing that imbalance back at identical cycle cost,
- streaming replay: the trace arrives as a generator and is never
  materialized,
- a 2-socket NUMA layout charging remote cores a per-packet penalty,
- per-CPU count-min state merged back into one coherent sketch.

Run:  python examples/multicore_scaling.py
"""

from repro.ebpf.cost_model import ExecMode, NumaTopology
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.multicore import RssDispatcher, merged_countmin_estimate
from repro.net.xdp import XdpPipeline
from repro.nfs import CountMinNF


def factory(core: int) -> CountMinNF:
    """One private runtime + sketch per core (per-CPU eBPF semantics)."""
    return CountMinNF(BpfRuntime(mode=ExecMode.ENETSTL, seed=core), depth=4)


def main() -> None:
    n_packets = 16_000
    uniform = FlowGenerator(n_flows=2048, seed=5).trace(n_packets)
    zipf = FlowGenerator(n_flows=2048, seed=5, distribution="zipf").trace(n_packets)

    single = XdpPipeline(factory(0)).run(uniform)
    print(f"Count-min NF, single core: {single.mpps:6.2f} Mpps\n")

    print("RSS scaling over a uniform trace:")
    print("  cores  aggregate Mpps  speedup  imbalance")
    for n_cores in (1, 2, 4, 8):
        result = RssDispatcher(factory, n_cores=n_cores).run(uniform)
        print(
            f"  {n_cores:5d}  {result.aggregate_mpps:14.2f}  "
            f"{result.speedup_over(single):6.2f}x  {result.imbalance:9.3f}"
        )

    zipf_result = RssDispatcher(factory, n_cores=8).run(zipf)
    print(
        f"\nZipf trace at 8 cores: {zipf_result.aggregate_mpps:.2f} Mpps "
        f"aggregate, imbalance {zipf_result.imbalance:.2f} "
        f"(heavy flows pin to single queues)"
    )
    print(
        f"  lossless up to {zipf_result.max_lossless_pps / 1e6:.2f} Mpps "
        f"offered aggregate rate"
    )

    # Steering policies: same packets, same cycles, less imbalance.
    # The trace is fed as a *generator* — streaming replay never
    # materializes the packet list (peak memory is O(cores x batch)).
    print("\nSteering an 8192-flow Zipf trace at 8 cores (streamed):")
    print("  policy  aggregate Mpps  imbalance  total cycles")
    for policy in ("rss", "rekey", "ntuple"):
        fg = FlowGenerator(n_flows=8192, seed=5, distribution="zipf")
        result = RssDispatcher(factory, n_cores=8, steering=policy).run(
            fg.iter_trace(n_packets)
        )
        print(
            f"  {policy:>6}  {result.aggregate_mpps:14.2f}  "
            f"{result.imbalance:9.3f}  {result.total_cycles}"
        )

    # NUMA: spread the 8 cores over 2 sockets; the 4 remote cores pay a
    # per-packet cross-node penalty that lowers wall-clock throughput
    # but never touches the NF cycle accounting.
    print("\nSame fleet on a 2-socket host (ntuple steering):")
    for n_nodes in (1, 2):
        fg = FlowGenerator(n_flows=8192, seed=5, distribution="zipf")
        numa = NumaTopology(n_nodes=n_nodes) if n_nodes > 1 else None
        result = RssDispatcher(
            factory, n_cores=8, steering="ntuple", numa=numa
        ).run(fg.iter_trace(n_packets))
        extra = (
            f", {result.total_numa_cycles} cross-node cycles"
            if numa
            else ""
        )
        print(
            f"  {n_nodes} node(s): {result.aggregate_mpps:6.2f} Mpps "
            f"aggregate{extra}"
        )

    # Per-CPU sketches merge back into one coherent estimate.
    disp = RssDispatcher(factory, n_cores=8)
    disp.run(zipf)
    ref = factory(99)
    XdpPipeline(ref).run(zipf)
    probe = max(
        (f for f in FlowGenerator(n_flows=2048, seed=5).flows[:64]),
        key=lambda f: ref.true_free_estimate(f.key_int),
    )
    merged = merged_countmin_estimate(disp.nfs, probe.key_int)
    print(
        f"\nHeaviest probed flow: merged 8-core estimate {merged} packets, "
        f"single-core estimate {ref.true_free_estimate(probe.key_int)} "
        f"(identical by construction)"
    )


if __name__ == "__main__":
    main()
