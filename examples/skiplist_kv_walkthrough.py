#!/usr/bin/env python3
"""The memory wrapper, step by step (case study 1).

Walks through exactly what Listing 3 of the paper does — allocating
nodes, delegating ownership to the proxy, connecting them, traversing
with zero-check ``get_next`` — and then demonstrates the two headline
safety behaviors:

1. lazy safety checking: freeing a node that others still point at
   nulls those pointers, so no use-after-free is observable;
2. allocation-failure handling: the NULL path the verifier forces.

Finishes with the full skip-list KV store the wrapper enables (the NF
that pure eBPF cannot express at all) and its kernel-gap measurement.

Run:  python examples/skiplist_kv_walkthrough.py
"""

from repro.core.memwrap import MemoryWrapper, NodeProxy
from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.xdp import XdpPipeline
from repro.nfs import SkipListKV

MASK64 = (1 << 64) - 1


def wrapper_walkthrough() -> None:
    print("== the memory wrapper, Listing-3 style ==")
    rt = BpfRuntime(mode=ExecMode.ENETSTL, seed=1)
    w = MemoryWrapper(rt)
    proxy = NodeProxy("list")     # lives in a BPF map

    # list_add: alloc, adopt, connect behind the head.
    head = w.node_alloc(1, 1, 8)
    w.set_owner(proxy, head)
    new_entry = w.node_alloc(1, 1, 16)
    if new_entry is None:          # KF_RET_NULL: mandatory check
        raise SystemExit("allocation failed")
    w.set_owner(proxy, new_entry)
    w.node_connect(head, 0, new_entry, 0)
    w.node_write(new_entry, 0, b"payload")
    w.node_release(new_entry)      # the proxy keeps it alive
    print(f"  proxy owns {len(proxy)} nodes "
          f"(a *variable* number — the thing plain eBPF cannot persist)")

    # Traversal: zero safety checks per get_next.
    nxt = w.get_next(head, 0)
    print(f"  head->next payload: {nxt.read(0, 7)!r}")
    w.node_release(nxt)

    # Lazy safety checking: free new_entry WITHOUT disconnecting it.
    w.unset_owner(proxy, new_entry)
    print(f"  freed head's successor without disconnecting it first...")
    print(f"  get_next(head) now returns: {w.get_next(head, 0)}  (not a dangling pointer)")

    # Allocation failure path.
    w.fail_next_alloc()
    node = w.node_alloc(1, 1, 8)
    print(f"  injected kmalloc failure -> node_alloc returned {node}")
    w.node_release(head)
    proxy.drop_all(w)


def skiplist_measurement() -> None:
    print("\n== skip-list KV on the wrapper (infeasible in pure eBPF) ==")
    flows = FlowGenerator(n_flows=8192, seed=3)
    keys = [f.key_int & MASK64 for f in flows.flows]
    trace = flows.trace(8000)
    results = {}
    for mode in (ExecMode.KERNEL, ExecMode.ENETSTL):
        rt = BpfRuntime(mode=mode, seed=3)
        nf = SkipListKV(rt)
        nf.preload(keys)
        rt.cycles.reset()
        results[mode] = XdpPipeline(nf).run(trace)
        print(f"  {mode.label:8s}: {results[mode].mpps:5.2f} Mpps "
              f"(lookups over {len(keys)} keys)")
    gap = 1 - results[ExecMode.ENETSTL].pps / results[ExecMode.KERNEL].pps
    print(f"  eNetSTL gap to the kernel build: {gap:.2%} "
          f"(paper: 7.33% for lookups)")


def main() -> None:
    wrapper_walkthrough()
    skiplist_measurement()


if __name__ == "__main__":
    main()
