#!/usr/bin/env python3
"""Safe interaction between eBPF and eNetSTL, enforced by metadata.

Builds small eBPF-IR programs against the full eNetSTL kfunc registry
and shows the verifier's judgments:

- a correct allocate/check/release program is accepted and runs;
- forgetting the NULL check, leaking the node, or using it after
  release are all rejected statically — the paper's §4.1/§4.4 story,
  where the verifier validates *metadata*, never kfunc bodies.

Run:  python examples/verifier_demo.py
"""

from repro.core.kfunc import enetstl_registry
from repro.ebpf.insn import (
    Call,
    Exit,
    Imm,
    JmpIf,
    Mov,
    Program,
    R0,
    R1,
    R2,
    R3,
    R6,
)
from repro.ebpf.verifier import Verifier, VerifierError


def check(name: str, insns) -> None:
    verifier = Verifier(enetstl_registry(), prog_type="xdp")
    try:
        stats = verifier.verify(Program(insns, name=name))
        print(f"  ACCEPTED  {name}  ({stats.states_explored} states explored)")
    except VerifierError as exc:
        print(f"  REJECTED  {name}: {exc}")


def alloc_args():
    # node_alloc(n_outs=1, n_ins=1, data_size=64) — all constants, as
    # the __k annotations require.
    return [Mov(R1, Imm(1)), Mov(R2, Imm(1)), Mov(R3, Imm(64))]


def main() -> None:
    print("verifying programs against the eNetSTL kfunc metadata:\n")

    check(
        "correct alloc/check/release",
        [
            *alloc_args(),
            Call("node_alloc"),
            JmpIf("eq", R0, Imm(0), 8),   # mandatory NULL check
            Mov(R6, R0),
            Mov(R1, R6),
            Call("node_release"),          # KF_RELEASE pairs the alloc
            Mov(R0, Imm(0)),
            Exit(),
        ],
    )

    check(
        "missing NULL check before use",
        [
            *alloc_args(),
            Call("node_alloc"),
            Mov(R1, R0),                   # maybe-NULL into a kptr arg
            Call("node_release"),
            Mov(R0, Imm(0)),
            Exit(),
        ],
    )

    check(
        "leaked node (no release on the non-NULL path)",
        [
            *alloc_args(),
            Call("node_alloc"),
            JmpIf("eq", R0, Imm(0), 6),
            Mov(R0, Imm(0)),               # forgot node_release
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
        ],
    )

    check(
        "use after release",
        [
            *alloc_args(),
            Call("node_alloc"),
            JmpIf("eq", R0, Imm(0), 10),
            Mov(R6, R0),
            Mov(R1, R6),
            Call("node_release"),
            Mov(R1, R6),                   # r6 was invalidated
            Call("node_release"),
            Mov(R0, Imm(0)),
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
        ],
    )

    check(
        "bpf_ffs64 from an XDP program (allowed prog type)",
        [Mov(R1, Imm(1)), Call("bpf_ffs64"), Exit()],
    )
    # ... and the same call from a socket-filter program:
    verifier = Verifier(enetstl_registry(), prog_type="socket_filter")
    try:
        verifier.verify(
            Program([Mov(R1, Imm(1)), Call("bpf_ffs64"), Exit()], name="sf")
        )
        print("  ACCEPTED  socket-filter bpf_ffs64 (unexpected!)")
    except VerifierError as exc:
        print(f"  REJECTED  socket-filter bpf_ffs64: {exc}")


if __name__ == "__main__":
    main()
