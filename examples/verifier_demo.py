#!/usr/bin/env python3
"""Safe interaction between eBPF and eNetSTL, enforced by metadata.

Builds small eBPF-IR programs against the full eNetSTL kfunc registry
and shows the verifier's judgments:

- a correct allocate/check/release program is accepted and runs;
- forgetting the NULL check, leaking the node, or using it after
  release are all rejected statically — the paper's §4.1/§4.4 story,
  where the verifier validates *metadata*, never kfunc bodies;
- range tracking in action: a guarded packet read and a constant-trip
  loop are accepted with their safety checks marked elidable, shown as
  a disassembly interleaved with per-instruction range facts.

Run:  python examples/verifier_demo.py
"""

from repro.core.kfunc import enetstl_registry
from repro.ebpf.disasm import disassemble_one
from repro.ebpf.insn import (
    Call,
    Exit,
    Imm,
    JmpIf,
    Mov,
    Program,
    R0,
    R1,
    R2,
    R3,
    R6,
)
from repro.ebpf.progs import get_case
from repro.ebpf.verifier import Verifier, VerifierError


def check(name: str, insns) -> None:
    verifier = Verifier(enetstl_registry(), prog_type="xdp")
    try:
        stats = verifier.verify(Program(insns, name=name))
        print(f"  ACCEPTED  {name}  ({stats.states_explored} states explored)")
    except VerifierError as exc:
        print(f"  REJECTED  {name}: {exc}")


def alloc_args():
    # node_alloc(n_outs=1, n_ins=1, data_size=64) — all constants, as
    # the __k annotations require.
    return [Mov(R1, Imm(1)), Mov(R2, Imm(1)), Mov(R3, Imm(64))]


def main() -> None:
    print("verifying programs against the eNetSTL kfunc metadata:\n")

    check(
        "correct alloc/check/release",
        [
            *alloc_args(),
            Call("node_alloc"),
            JmpIf("eq", R0, Imm(0), 8),   # mandatory NULL check
            Mov(R6, R0),
            Mov(R1, R6),
            Call("node_release"),          # KF_RELEASE pairs the alloc
            Mov(R0, Imm(0)),
            Exit(),
        ],
    )

    check(
        "missing NULL check before use",
        [
            *alloc_args(),
            Call("node_alloc"),
            Mov(R1, R0),                   # maybe-NULL into a kptr arg
            Call("node_release"),
            Mov(R0, Imm(0)),
            Exit(),
        ],
    )

    check(
        "leaked node (no release on the non-NULL path)",
        [
            *alloc_args(),
            Call("node_alloc"),
            JmpIf("eq", R0, Imm(0), 6),
            Mov(R0, Imm(0)),               # forgot node_release
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
        ],
    )

    check(
        "use after release",
        [
            *alloc_args(),
            Call("node_alloc"),
            JmpIf("eq", R0, Imm(0), 10),
            Mov(R6, R0),
            Mov(R1, R6),
            Call("node_release"),
            Mov(R1, R6),                   # r6 was invalidated
            Call("node_release"),
            Mov(R0, Imm(0)),
            Exit(),
            Mov(R0, Imm(0)),
            Exit(),
        ],
    )

    check(
        "bpf_ffs64 from an XDP program (allowed prog type)",
        [Mov(R1, Imm(1)), Call("bpf_ffs64"), Exit()],
    )
    # ... and the same call from a socket-filter program:
    verifier = Verifier(enetstl_registry(), prog_type="socket_filter")
    try:
        verifier.verify(
            Program([Mov(R1, Imm(1)), Call("bpf_ffs64"), Exit()], name="sf")
        )
        print("  ACCEPTED  socket-filter bpf_ffs64 (unexpected!)")
    except VerifierError as exc:
        print(f"  REJECTED  socket-filter bpf_ffs64: {exc}")

    demo_range_facts()
    demo_rejection_diagnostics()


def _show_facts(name: str) -> None:
    """Verify a bundled program and print its annotated listing."""
    case = get_case(name)
    verifier = Verifier(enetstl_registry(), collect_facts=True)
    vp = verifier.verify(case.prog)
    ann = vp.annotations
    print(
        f"\n  ACCEPTED  {name}  ({vp.stats.states_explored} states explored, "
        f"{vp.stats.checks_elided} checks elided, "
        f"{vp.stats.loops_bounded} loops bounded)"
    )
    for i, insn in enumerate(case.prog):
        tags = []
        if i in ann.safe_mem:
            tags.append("mem-check elided")
        if i in ann.safe_div:
            tags.append("div-check elided")
        if i in ann.loop_bounds:
            tags.append(f"back-edge x{ann.loop_bounds[i]}")
        tag = f"   ; {', '.join(tags)}" if tags else ""
        print(f"  {i:4d}: {disassemble_one(insn)}{tag}")
        for fact in ann.facts.get(i, []):
            print(f"        | {fact}")


def demo_range_facts() -> None:
    """Range tracking pays in the data plane: proofs elide checks."""
    print("\nrange-aware verification (disasm interleaved with facts):")
    _show_facts("pkt_guarded_read")
    _show_facts("loop_counted")


def demo_rejection_diagnostics() -> None:
    """A rejection names the instruction, the path, and the state."""
    case = get_case("div_maybe_zero")
    print("\nrejection diagnostics (the --explain view):")
    try:
        Verifier(enetstl_registry()).verify(case.prog)
        print(f"  ACCEPTED  {case.name} (unexpected!)")
    except VerifierError as exc:
        print(f"  REJECTED  {case.name}:")
        for line in exc.explain().splitlines():
            print(f"    {line}")


if __name__ == "__main__":
    main()
