#!/usr/bin/env python3
"""Quickstart: measure one NF in all three execution environments.

Builds a Count-min sketch NF (case study 2) as pure eBPF, in-kernel,
and eNetSTL variants, replays the same 64-byte packet trace through the
XDP pipeline, and prints the single-core packet rates — the experiment
behind Fig. 3(e), in ~30 lines of API.

Run:  python examples/quickstart.py
"""

from repro.ebpf.cost_model import ExecMode, improvement
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.xdp import XdpPipeline
from repro.nfs import CountMinNF


def main() -> None:
    # A deterministic pktgen-style trace: 25k packets over 1024 flows.
    flows = FlowGenerator(n_flows=1024, distribution="uniform", seed=7)
    trace = flows.trace(25_000)

    print("Count-min sketch (8 hash functions), same trace, three builds:\n")
    results = {}
    for mode in (ExecMode.PURE_EBPF, ExecMode.KERNEL, ExecMode.ENETSTL):
        rt = BpfRuntime(mode=mode, seed=7)
        nf = CountMinNF(rt, depth=8, width=2048)
        result = XdpPipeline(nf).run(trace)
        results[mode] = result
        print(
            f"  {mode.label:8s}: {result.mpps:6.2f} Mpps "
            f"({result.cycles_per_packet:6.1f} cycles/packet, "
            f"{result.proc_time_ns:5.0f} ns/packet)"
        )

    ebpf = results[ExecMode.PURE_EBPF]
    enet = results[ExecMode.ENETSTL]
    kern = results[ExecMode.KERNEL]
    print(
        f"\n  eNetSTL over eBPF:  +{improvement(ebpf.cycles_per_packet, enet.cycles_per_packet):.1%}"
        f"   (paper reports +70.9% at 8 hash functions)"
    )
    print(
        f"  eNetSTL vs kernel:  -{1 - kern.cycles_per_packet / enet.cycles_per_packet:.1%}"
        f"    (paper reports a 1.64% average gap)"
    )

    # The sketch is real: query a flow's estimate.
    nf = CountMinNF(BpfRuntime(mode=ExecMode.ENETSTL, seed=7), depth=8)
    XdpPipeline(nf).run(trace)
    probe = flows.flows[0]
    print(
        f"\n  estimate for flow {probe.five_tuple}: "
        f"{nf.true_free_estimate(probe.key_int)} packets"
    )


if __name__ == "__main__":
    main()
