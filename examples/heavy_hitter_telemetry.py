#!/usr/bin/env python3
"""Heavy-hitter telemetry: HeavyKeeper + NitroSketch on skewed traffic.

A realistic measurement deployment: Zipf traffic (a few elephant flows,
a long tail of mice), a HeavyKeeper top-k tracker and a sampled
NitroSketch both attached at XDP.  Prints detection quality against
ground truth and the throughput cost of each configuration.

Run:  python examples/heavy_hitter_telemetry.py
"""

from collections import Counter

from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.xdp import XdpPipeline
from repro.nfs import HeavyKeeperNF, NitroSketchNF

N_PACKETS = 40_000
N_FLOWS = 2048
TOP_K = 16


def main() -> None:
    flows = FlowGenerator(
        n_flows=N_FLOWS, distribution="zipf", zipf_s=1.15, seed=42
    )
    trace = flows.trace(N_PACKETS)
    truth = Counter(p.key_int for p in trace)
    true_top = [key for key, _ in truth.most_common(TOP_K)]

    # --- HeavyKeeper: who are the elephants? -------------------------
    rt = BpfRuntime(mode=ExecMode.ENETSTL, seed=42)
    hk = HeavyKeeperNF(rt, depth=2, width=4096, k=TOP_K)
    result = XdpPipeline(hk).run(trace)
    reported = [key for _, key in hk.topk()]
    recall = len(set(reported) & set(true_top)) / TOP_K
    print(f"HeavyKeeper (eNetSTL): {result.mpps:.2f} Mpps")
    print(f"  top-{TOP_K} recall vs ground truth: {recall:.0%}")
    print("  heaviest flows (estimate vs truth):")
    for count, key in hk.topk()[:5]:
        print(f"    flow {key & 0xFFFFFFFF:>10x}: est {count:>6} true {truth[key]:>6}")

    # --- NitroSketch: per-flow rates at a fraction of the cost -------
    print("\nNitroSketch at different sampling probabilities:")
    for p in (1.0, 0.25, 1 / 16):
        rt = BpfRuntime(mode=ExecMode.ENETSTL, seed=42)
        nitro = NitroSketchNF(rt, depth=8, width=8192, update_prob=p)
        result = XdpPipeline(nitro).run(trace)
        errors = [
            abs(nitro.estimate(key) - truth[key]) / truth[key]
            for key in true_top
        ]
        print(
            f"  p={p:<7.4f}: {result.mpps:6.2f} Mpps, "
            f"mean top-flow error {sum(errors) / len(errors):6.1%}"
        )

    # --- the same sketch in pure eBPF, for contrast -----------------
    rt = BpfRuntime(mode=ExecMode.PURE_EBPF, seed=42)
    nitro = NitroSketchNF(rt, depth=8, width=8192, update_prob=0.25)
    result = XdpPipeline(nitro).run(trace)
    print(f"\npure-eBPF NitroSketch p=0.25: {result.mpps:.2f} Mpps "
          f"(the gap is Fig. 3(d))")


if __name__ == "__main__":
    main()
