#!/usr/bin/env python3
"""A composed service chain: firewall -> flow cache -> load balancer.

Real deployments chain NFs on one XDP hook.  This example wires three
of them — a HyperCuts rule firewall, an LRU flow cache (only possible
through the memory wrapper), and a Maglev backend selector — into one
pipeline, and measures the chain end-to-end in eBPF and eNetSTL builds.

It also shows the queueing-latency extension: what happens to
end-to-end latency as offered load approaches each build's capacity.

Run:  python examples/service_chain.py
"""

from repro.analysis.experiments import make_rules_for_flows
from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.net.flowgen import FlowGenerator
from repro.net.packet import Packet, XdpAction
from repro.net.xdp import XdpPipeline
from repro.nfs import HyperCutsNF, LruCacheNF, MaglevNF


class ServiceChain:
    """firewall -> flow cache -> balancer on a shared runtime."""

    def __init__(self, mode: ExecMode, rules, seed: int = 5) -> None:
        self.rt = BpfRuntime(mode=mode, seed=seed)
        self.firewall = HyperCutsNF(self.rt, rules)
        # The cache needs the memory wrapper; in a pure-eBPF chain it
        # simply cannot exist, so that build skips it (the paper's P1).
        self.cache = (
            None
            if mode == ExecMode.PURE_EBPF
            else LruCacheNF(self.rt, capacity=512)
        )
        self.balancer = MaglevNF(self.rt)
        self.denied = 0

    def process(self, packet: Packet) -> str:
        verdict = self.firewall.process(packet)
        if verdict == XdpAction.DROP:
            self.denied += 1
            return XdpAction.DROP
        if self.cache is not None:
            self.cache.process(packet)
        return self.balancer.process(packet)


def main() -> None:
    flows = FlowGenerator(n_flows=1024, distribution="zipf", seed=5)
    rules = make_rules_for_flows(flows.flows[:768])   # 75% of flows allowed
    trace = flows.trace(15_000)

    print("service chain: HyperCuts firewall -> LRU cache -> Maglev\n")
    results = {}
    for mode in (ExecMode.PURE_EBPF, ExecMode.ENETSTL):
        chain = ServiceChain(mode, rules)
        result = XdpPipeline(chain).run(trace)
        results[mode] = result
        cache_note = (
            "no flow cache (P1: infeasible)"
            if chain.cache is None
            else f"cache hit rate "
                 f"{chain.cache.hits / max(chain.cache.hits + chain.cache.misses, 1):.0%}"
        )
        print(
            f"  {mode.label:8s}: {result.mpps:5.2f} Mpps | "
            f"denied {chain.denied} | {cache_note}"
        )

    print(
        "\n  note: the eNetSTL build is slower per packet because it does "
        "MORE —\n  the flow-cache stage simply cannot exist in the pure-eBPF "
        "chain.\n  Functionality, not just speed, is what the library adds "
        "here."
    )

    print("\nlatency vs offered load (M/D/1 queueing extension):")
    for offered in (0.5e6, 2e6, 4e6):
        row = [f"{offered / 1e6:4.1f} Mpps offered:"]
        for mode, result in results.items():
            lat = result.latency_at_load_us(offered)
            row.append(
                f"{mode.label} "
                + (f"{lat:7.1f} us" if lat != float("inf") else "saturated")
            )
        print("   " + "   ".join(row))


if __name__ == "__main__":
    main()
