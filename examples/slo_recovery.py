#!/usr/bin/env python3
"""SLO recovery: crash a core under load and watch p99 heal.

The queueing model makes tail latency an observable; this example makes
it a *target*.  A fleet of per-core count-min pipelines serves a steady
8 Mpps Poisson stream — fine for 2 cores, hopeless for 1.  Mid-run one
of the two active cores crashes and loses its per-CPU state.  Two
control planes race the same deterministic scenario:

- **autoscaler on** — the SLO loop re-packs the indirection table over
  the survivor, notices p99 blow past the 60 us target, and activates
  parked cores (hysteresis + cooldown + backoff); the repaired core
  later rejoins cold and pays a warm-up penalty while its sketches
  refill.
- **autoscaler off** — the fleet re-packs but never grows; with the
  dead core gone for good, p99 never comes back under target.

Run:  python examples/slo_recovery.py
"""

from repro.ebpf.cost_model import ExecMode
from repro.ebpf.runtime import BpfRuntime
from repro.faults import FaultPlan, WedgeDetection
from repro.net.flowgen import FlowGenerator
from repro.net.queueing import ArrivalProcess, QueueingConfig
from repro.net.slo import SloConfig, SloController
from repro.nfs import CountMinNF
from repro.nfs.degrade import ColdStartWarmup

TARGET_P99_US = 60.0
N_PACKETS = 14_000
OFFERED_PPS = 8e6


def factory(core: int) -> CountMinNF:
    """One private runtime + sketch per core (per-CPU eBPF semantics)."""
    return CountMinNF(BpfRuntime(mode=ExecMode.ENETSTL, seed=core), depth=4)


def make_trace():
    flows = FlowGenerator(n_flows=512, seed=5, distribution="zipf")
    arrivals = ArrivalProcess(OFFERED_PPS, seed=5)
    return list(flows.iter_trace_bursty(N_PACKETS, arrivals))


def run(trace, autoscale: bool, rejoin_epochs: int):
    controller = SloController(
        factory,
        max_cores=4,
        initial_cores=2,
        queueing=QueueingConfig(),
        config=SloConfig(
            target_p99_us=TARGET_P99_US,
            epoch_packets=512,
            autoscale=autoscale,
            rejoin_epochs=rejoin_epochs,
        ),
        faults=FaultPlan(crash_core=1, crash_at=1500),
        detection=WedgeDetection(seed=2),
        warmup=ColdStartWarmup(),
    )
    return controller.run(trace)


def show_timeline(run_result) -> None:
    print("  epoch  cores  p50_us  p95_us  p99_us  SLO  events")
    for e in run_result.timeline:
        verdict = "ok " if e.meets(TARGET_P99_US) else "MISS"
        events = "; ".join(e.events) if e.events else "-"
        print(
            f"  {e.epoch:5d}  {e.n_active:5d}  {e.p50_us:6.1f}  "
            f"{e.p95_us:6.1f}  {e.p99_us:6.1f}  {verdict}  {events}"
        )


def main() -> None:
    trace = make_trace()
    print(
        f"Scenario: {N_PACKETS} packets at {OFFERED_PPS/1e6:.0f} Mpps, "
        f"2 of 4 cores active, core 1 crashes after 1500 packets.\n"
        f"SLO: p99 <= {TARGET_P99_US:.0f} us.\n"
    )

    print("=== autoscaler ON (parked cores absorb the breach) ===")
    scaled = run(trace, autoscale=True, rejoin_epochs=4)
    show_timeline(scaled)
    recovery = scaled.recovery_s()
    assert recovery is not None, "autoscaled run should recover"
    print(f"\n  time from SLO breach to sustained compliance: "
          f"{recovery * 1e3:.2f} ms")
    print(f"  worst epoch p99: {scaled.worst_p99_us:.1f} us; "
          f"accounting balanced: {scaled.is_fully_accounted}")

    print("\n=== autoscaler OFF (fixed fleet, core never replaced) ===")
    fixed = run(trace, autoscale=False, rejoin_epochs=0)
    show_timeline(fixed)
    assert fixed.recovery_s() is None
    print(f"\n  p99 never returned under target "
          f"({len(fixed.violating_epochs())} violating epochs; "
          f"final fleet {fixed.timeline[-1].n_active} cores)")

    print(
        f"\nSame trace, same crash, same seeds: the control loop is the "
        f"only difference.\nOverall p99: "
        f"{scaled.latency_summary()['p99_us']:.1f} us with the "
        f"autoscaler vs {fixed.latency_summary()['p99_us']:.1f} us "
        f"without."
    )


if __name__ == "__main__":
    main()
